//! The durable mining tier: WAL-backed logging and crash recovery for
//! the sharded miner.
//!
//! [`DurableMiner`] wraps a [`ShardedMiner`] and journals the *logical
//! operation stream* — every ingest (attribute tuple + optional path)
//! and every forget — into a [`farmer_store::Wal`] before the operation
//! can mutate any shard's graph (the [`WalSink`] hook on the router).
//! Appends are group-committed on the router's existing two-phase batch
//! boundary: one write+fsync per `route_batch` dispatch, so durability
//! cost amortizes across the batch instead of taxing every event.
//!
//! ## Recovery model
//!
//! Miner state is a deterministic function of the operation sequence
//! (same ingests and forgets, in order, rebuild the same graph bit for
//! bit — including eviction tie-breaks and decay epochs, which depend
//! only on insertion history). Recovery is therefore exact from genesis
//! replay alone; checkpoints exist to make it *bounded*.
//!
//! [`DurableMiner::checkpoint`] persists a **full state image** into a
//! sidecar file (`<wal>.ckpt<seq>`, written via tmp+rename): the
//! consistent serving [`StreamSnapshot`] at that cut *plus* every
//! shard's bit-exact [`MinerState`] (graph accumulators as raw f64
//! bits, look-ahead window, cached eviction-ordering degrees — see
//! `farmer_core::state`). A CHECKPOINT record referencing the image
//! (sequence, operation counts, length, CRC) is appended to the log;
//! that record's own LSN is the checkpoint's **anchor**.
//!
//! [`recover`] walks the checkpoint ladder newest → oldest: the first
//! image that exists, matches its recorded length and CRC, and decodes
//! is restored directly ([`ShardedMiner::spawn_restored`]) and only the
//! WAL suffix past its anchor LSN is replayed — O(checkpoint interval)
//! work instead of O(log). A truncated or corrupt newest image falls
//! back to the next-older one, then to genesis replay (possible only
//! while the log still starts at LSN 1). The restored state is verified
//! bitwise against the image's embedded serving snapshot
//! ([`RecoveryReport::checkpoint_verified`]), and the crash-point
//! matrix asserts bitwise parity against an uninterrupted genesis
//! oracle at every kill point.
//!
//! ## Log compaction
//!
//! Once an image anchors recovery, pages wholly before it are dead
//! weight. [`DurableMiner::compact`] (or the standalone [`compact`]
//! entry point, and automatically per checkpoint when
//! [`DurableConfig::compact_on_checkpoint`] is set) drops WAL pages
//! wholly before the anchor of the *older* surviving checkpoint, so
//! every retained sidecar keeps the suffix it needs — the retention
//! policy never reclaims a page a surviving checkpoint still replays
//! from. Reclaimed pages and anchors surface as `wal.compactions`,
//! `wal.pages_dropped` and the `wal.anchor_lsn` gauge.
//!
//! The loss window is explicit: operations appended since the last
//! completed sync (at most one route batch, plus any explicitly
//! unflushed tail) are lost on a crash, exactly as a real power cut
//! would lose them. [`DurableMiner::crash`] simulates that for tests and
//! fault injection.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use farmer_core::{CorrelatorList, EdgeState, FarmerState, GraphState, NodeState, Request};
use farmer_obs::Registry;
use farmer_store::codec::{DecodeError, Reader, Writer};
use farmer_store::wal::{crc32, record_kind, Lsn, Wal, WalCompaction, WalError, WalMetrics};
use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::engine::MinerState;
use crate::shard::WalSink;
use crate::snapshot::StreamSnapshot;
use crate::{ShardedMiner, StreamConfig};

/// One logical mining operation, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// One access: the Stage-1 attribute tuple plus (for path-bearing
    /// traces) the file's path components.
    Ingest {
        /// The extracted request.
        req: Request,
        /// The file's path, when the trace carries one.
        path: Option<FilePath>,
    },
    /// Drop all state for a file (unlink/churn tombstone).
    Forget(FileId),
}

// Op payload tags. A tag is the first payload byte; the record kind
// (`record_kind::OP`) stays coarse so the tail scan needs no op-level
// knowledge.
const TAG_INGEST: u8 = 1;
const TAG_INGEST_PATH: u8 = 2;
const TAG_FORGET: u8 = 3;

fn encode_ingest(req: &Request, path: Option<&FilePath>) -> Vec<u8> {
    let mut w = Writer::with_capacity(26 + path.map_or(0, |p| 4 + 4 * p.components().len()));
    match path {
        None => {
            w.u8(TAG_INGEST);
        }
        Some(_) => {
            w.u8(TAG_INGEST_PATH);
        }
    }
    w.u32(req.file.raw())
        .u32(req.uid.raw())
        .u32(req.pid.raw())
        .u32(req.host.raw())
        .u32(req.dev.raw());
    if let Some(p) = path {
        w.u32(p.components().len() as u32);
        for &c in p.components() {
            w.u32(c);
        }
    }
    w.finish()
}

fn encode_forget(file: FileId) -> Vec<u8> {
    let mut w = Writer::with_capacity(5);
    w.u8(TAG_FORGET).u32(file.raw());
    w.finish()
}

/// Encode one op into a WAL payload.
pub fn encode_op(op: &WalOp) -> Vec<u8> {
    match op {
        WalOp::Ingest { req, path } => encode_ingest(req, path.as_ref()),
        WalOp::Forget(file) => encode_forget(*file),
    }
}

/// Decode one op payload. Errors only on malformed bytes, which a
/// checksum-verified log never yields.
pub fn decode_op(payload: &[u8]) -> Result<WalOp, DecodeError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    match tag {
        TAG_INGEST | TAG_INGEST_PATH => {
            let req = Request {
                file: FileId::new(r.u32()?),
                uid: farmer_trace::UserId::new(r.u32()?),
                pid: farmer_trace::ProcId::new(r.u32()?),
                host: farmer_trace::HostId::new(r.u32()?),
                dev: farmer_trace::DevId::new(r.u32()?),
            };
            let path = if tag == TAG_INGEST_PATH {
                let n = r.u32()? as usize;
                if n > r.remaining() / 4 {
                    return Err(DecodeError::BadLength);
                }
                let mut comps = Vec::with_capacity(n);
                for _ in 0..n {
                    comps.push(r.u32()?);
                }
                Some(FilePath::from_components(comps))
            } else {
                None
            };
            Ok(WalOp::Ingest { req, path })
        }
        TAG_FORGET => Ok(WalOp::Forget(FileId::new(r.u32()?))),
        _ => Err(DecodeError::BadLength),
    }
}

/// Serialize a consistent snapshot for the checkpoint sidecar. Degrees
/// are stored as raw f64 bits, so the round trip is bit-exact.
pub fn encode_snapshot(s: &StreamSnapshot) -> Vec<u8> {
    let mut w = Writer::with_capacity(40 + 16 * s.table.num_entries());
    w.u64(s.events)
        .u32(s.shards as u32)
        .u64(s.tracked_files as u64)
        .u64(s.evictions)
        .u64(s.state_bytes as u64)
        .u32(s.table.len() as u32);
    for list in s.table.iter() {
        w.u32(list.owner.raw()).u32(list.len() as u32);
        for c in list.iter() {
            w.u32(c.file.raw()).u64(c.degree.to_bits());
        }
    }
    w.finish()
}

/// Decode a checkpoint sidecar back into a snapshot, preserving list
/// order (and therefore table iteration order) exactly.
pub fn decode_snapshot(bytes: &[u8]) -> Result<StreamSnapshot, DecodeError> {
    let mut r = Reader::new(bytes);
    let events = r.u64()?;
    let shards = r.u32()? as usize;
    let tracked_files = r.u64()? as usize;
    let evictions = r.u64()?;
    let state_bytes = r.u64()? as usize;
    let num_lists = r.u32()? as usize;
    let mut snap = StreamSnapshot {
        events,
        shards,
        tracked_files,
        evictions,
        state_bytes,
        ..StreamSnapshot::default()
    };
    for _ in 0..num_lists {
        let owner = FileId::new(r.u32()?);
        let n = r.u32()? as usize;
        if n > r.remaining() / 12 {
            return Err(DecodeError::BadLength);
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let file = FileId::new(r.u32()?);
            let degree = f64::from_bits(r.u64()?);
            entries.push(farmer_core::Correlator { file, degree });
        }
        snap.table
            .insert(CorrelatorList::from_sorted(owner, entries));
    }
    Ok(snap)
}

/// Bitwise snapshot equality: every mining-state scalar, every list in
/// order, every degree compared on raw bits. This is the recovery parity
/// invariant — stricter than the epsilon comparisons the cross-mode
/// tests use.
///
/// `state_bytes` is deliberately *not* compared: it reports resident
/// heap including memo-cache capacity, which grows as a side effect of
/// *building snapshots* — so it reflects observation history, not mined
/// state, and two bit-identical graphs can legitimately report slightly
/// different resident footprints.
pub fn snapshots_bitwise_equal(a: &StreamSnapshot, b: &StreamSnapshot) -> bool {
    if a.events != b.events
        || a.shards != b.shards
        || a.tracked_files != b.tracked_files
        || a.evictions != b.evictions
        || a.table.len() != b.table.len()
    {
        return false;
    }
    a.table.iter().zip(b.table.iter()).all(|(la, lb)| {
        la.owner == lb.owner
            && la.len() == lb.len()
            && la
                .iter()
                .zip(lb.iter())
                .all(|(ca, cb)| ca.file == cb.file && ca.degree.to_bits() == cb.degree.to_bits())
    })
}

fn encode_miner_state(w: &mut Writer, s: &MinerState) {
    w.u32(s.shard_id)
        .u32(s.num_shards)
        .u64(s.events_seen)
        .u64(s.owned_events)
        .u64(s.evictions)
        .u64(s.count_floor);
    w.u32(s.counts.len() as u32);
    for &(id, bits) in &s.counts {
        w.u32(id).u64(bits);
    }
    let f = &s.farmer;
    w.u64(f.observed);
    w.u32(f.window.len() as u32);
    for r in &f.window {
        w.u32(r.file.raw())
            .u32(r.uid.raw())
            .u32(r.pid.raw())
            .u32(r.host.raw())
            .u32(r.dev.raw());
    }
    w.u32(f.paths.len() as u32);
    for (id, comps) in &f.paths {
        w.u32(*id).u32(comps.len() as u32);
        for &c in comps {
            w.u32(c);
        }
    }
    let g = &f.graph;
    w.u64(g.decay_ln).u64(g.epoch);
    w.u32(g.nodes.len() as u32);
    for n in &g.nodes {
        w.u32(n.id).u64(n.total).u64(n.stamp).u64(n.sim_lb);
        w.u32(n.edges.len() as u32);
        for e in &n.edges {
            w.u32(e.to)
                .u64(e.mass)
                .u64(e.sim_sum)
                .u32(e.sim_n)
                .u64(e.deg)
                .u64(e.path_inter)
                .u64(e.inv_denom)
                .u8(e.succ_path as u8);
        }
    }
}

fn decode_miner_state(r: &mut Reader) -> Result<MinerState, DecodeError> {
    let shard_id = r.u32()?;
    let num_shards = r.u32()?;
    let events_seen = r.u64()?;
    let owned_events = r.u64()?;
    let evictions = r.u64()?;
    let count_floor = r.u64()?;
    let n = r.u32()? as usize;
    if n > r.remaining() / 12 {
        return Err(DecodeError::BadLength);
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push((r.u32()?, r.u64()?));
    }
    let observed = r.u64()?;
    let n = r.u32()? as usize;
    if n > r.remaining() / 20 {
        return Err(DecodeError::BadLength);
    }
    let mut window = Vec::with_capacity(n);
    for _ in 0..n {
        window.push(Request {
            file: FileId::new(r.u32()?),
            uid: farmer_trace::UserId::new(r.u32()?),
            pid: farmer_trace::ProcId::new(r.u32()?),
            host: farmer_trace::HostId::new(r.u32()?),
            dev: farmer_trace::DevId::new(r.u32()?),
        });
    }
    let n = r.u32()? as usize;
    if n > r.remaining() / 8 {
        return Err(DecodeError::BadLength);
    }
    let mut paths = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32()?;
        let m = r.u32()? as usize;
        if m > r.remaining() / 4 {
            return Err(DecodeError::BadLength);
        }
        let mut comps = Vec::with_capacity(m);
        for _ in 0..m {
            comps.push(r.u32()?);
        }
        paths.push((id, comps));
    }
    let decay_ln = r.u64()?;
    let epoch = r.u64()?;
    let n = r.u32()? as usize;
    if n > r.remaining() / 32 {
        return Err(DecodeError::BadLength);
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32()?;
        let total = r.u64()?;
        let stamp = r.u64()?;
        let sim_lb = r.u64()?;
        let m = r.u32()? as usize;
        if m > r.remaining() / 49 {
            return Err(DecodeError::BadLength);
        }
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push(EdgeState {
                to: r.u32()?,
                mass: r.u64()?,
                sim_sum: r.u64()?,
                sim_n: r.u32()?,
                deg: r.u64()?,
                path_inter: r.u64()?,
                inv_denom: r.u64()?,
                succ_path: r.u8()? != 0,
            });
        }
        nodes.push(NodeState {
            id,
            total,
            stamp,
            sim_lb,
            edges,
        });
    }
    Ok(MinerState {
        shard_id,
        num_shards,
        events_seen,
        owned_events,
        evictions,
        count_floor,
        counts,
        farmer: FarmerState {
            observed,
            window,
            paths,
            graph: GraphState {
                decay_ln,
                epoch,
                nodes,
            },
        },
    })
}

/// Serialize a full checkpoint image: the serving snapshot (length-
/// prefixed, so a reader can lift it without touching the shard states)
/// followed by every shard's bit-exact [`MinerState`].
pub fn encode_image(serving: &StreamSnapshot, shards: &[MinerState]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&encode_snapshot(serving));
    w.u32(shards.len() as u32);
    for s in shards {
        encode_miner_state(&mut w, s);
    }
    w.finish()
}

/// Decode a full checkpoint image back into its serving snapshot and
/// per-shard state images.
pub fn decode_image(bytes: &[u8]) -> Result<(StreamSnapshot, Vec<MinerState>), DecodeError> {
    let mut r = Reader::new(bytes);
    let serving = decode_snapshot(r.bytes()?)?;
    let n = r.u32()? as usize;
    if n > r.remaining() / 46 {
        return Err(DecodeError::BadLength);
    }
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(decode_miner_state(&mut r)?);
    }
    Ok((serving, shards))
}

/// Configuration for the durable tier.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The wrapped miner's configuration. Recovery must use the same
    /// shard count the log was written under (ownership partitioning is
    /// part of the replayed state).
    pub stream: StreamConfig,
    /// Events between automatic checkpoints (0 = only explicit
    /// [`DurableMiner::checkpoint`] calls).
    pub checkpoint_interval: u64,
    /// Compact the log after every checkpoint (drop pages wholly before
    /// the older surviving checkpoint's anchor). Off by default: an
    /// uncompacted log keeps genesis replay available as the last rung
    /// of the recovery ladder.
    pub compact_on_checkpoint: bool,
}

impl DurableConfig {
    /// Durability around `stream` with no automatic checkpoints.
    pub fn new(stream: StreamConfig) -> Self {
        DurableConfig {
            stream,
            checkpoint_interval: 0,
            compact_on_checkpoint: false,
        }
    }

    /// Checkpoint every `n` ingested events.
    pub fn with_checkpoint_interval(mut self, n: u64) -> Self {
        self.checkpoint_interval = n;
        self
    }

    /// Compact the log after every checkpoint.
    pub fn with_compaction(mut self, on: bool) -> Self {
        self.compact_on_checkpoint = on;
        self
    }
}

/// A checkpoint record's contents: which sidecar it references and the
/// cut it was taken at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Monotone checkpoint sequence number (names the sidecar file).
    pub seq: u64,
    /// Events ingested at the cut.
    pub events: u64,
    /// Operations (ingests + forgets) logged at the cut.
    pub ops: u64,
    /// Sidecar image length in bytes.
    pub snapshot_len: u64,
    /// CRC-32 of the sidecar image bytes.
    pub snapshot_crc: u32,
}

fn encode_checkpoint(c: &CheckpointInfo) -> Vec<u8> {
    let mut w = Writer::with_capacity(36);
    w.u64(c.seq)
        .u64(c.events)
        .u64(c.ops)
        .u64(c.snapshot_len)
        .u32(c.snapshot_crc);
    w.finish()
}

fn decode_checkpoint(payload: &[u8]) -> Result<CheckpointInfo, DecodeError> {
    let mut r = Reader::new(payload);
    Ok(CheckpointInfo {
        seq: r.u64()?,
        events: r.u64()?,
        ops: r.u64()?,
        snapshot_len: r.u64()?,
        snapshot_crc: r.u32()?,
    })
}

/// What [`recover`] found and rebuilt.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Operations replayed from the WAL suffix (past the anchor when a
    /// checkpoint image loaded; the whole log on genesis replay).
    pub ops_replayed: u64,
    /// Ingest events among them (forgets excluded).
    pub events_replayed: u64,
    /// Total operations the rebuilt state represents: the anchor
    /// checkpoint's cut plus the replayed suffix.
    pub ops_recovered: u64,
    /// Total ingest events the rebuilt state represents.
    pub events_recovered: u64,
    /// True when the log ended in a torn/corrupt tail that was dropped.
    pub torn_tail: bool,
    /// Bytes the tail scan discarded.
    pub dropped_bytes: u64,
    /// The checkpoint whose image anchored recovery, if any.
    pub checkpoint: Option<CheckpointInfo>,
    /// The anchor's LSN (the CHECKPOINT record's own LSN); replay
    /// covered exactly the records past it. `None` on genesis replay.
    pub anchor_lsn: Option<Lsn>,
    /// Checkpoint images that existed in the log but failed validation
    /// (missing, truncated, or corrupt) before one loaded — the rungs
    /// of the ladder recovery fell through.
    pub fallbacks: u64,
    /// Whether the state restored from the image matched its embedded
    /// serving snapshot bitwise (`None` when no image loaded).
    pub checkpoint_verified: Option<bool>,
    /// The anchor image's serving snapshot, available the moment
    /// recovery starts (before suffix replay finishes).
    pub serving_snapshot: Option<StreamSnapshot>,
    /// Wall-clock nanoseconds the recovery (scan + restore + replay)
    /// took.
    pub replay_ns: u64,
}

fn sidecar_path(wal: &Path, seq: u64) -> PathBuf {
    PathBuf::from(format!("{}.ckpt{}", wal.display(), seq))
}

fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp, path)
}

fn wal_io(e: WalError) -> io::Error {
    match e {
        WalError::Io(e) => e,
        other => io::Error::other(other),
    }
}

/// The router-side sink: appends each routed op, group-commits at the
/// dispatch boundary. Shares the log with the owning [`DurableMiner`]
/// (single-threaded access; the mutex is uncontended).
struct WalLogger {
    wal: Arc<Mutex<Wal>>,
}

impl WalSink for WalLogger {
    fn log_event(&mut self, req: &Request, path: Option<&FilePath>) -> io::Result<()> {
        let payload = encode_ingest(req, path);
        self.wal
            .lock()
            // lint: allow(panic) a poisoned WAL lock means an appender
            // panicked mid-write; continuing would risk a torn log
            .expect("wal lock poisoned")
            .append(record_kind::OP, &payload)
            .map_err(wal_io)?;
        Ok(())
    }

    fn log_forget(&mut self, file: FileId) -> io::Result<()> {
        self.wal
            .lock()
            // lint: allow(panic) a poisoned WAL lock means an appender
            // panicked mid-write; continuing would risk a torn log
            .expect("wal lock poisoned")
            .append(record_kind::OP, &encode_forget(file))
            .map_err(wal_io)?;
        Ok(())
    }

    fn on_batch(&mut self) -> io::Result<()> {
        // lint: allow(panic) poisoned-WAL policy: see log_event above
        self.wal.lock().expect("wal lock poisoned").sync()
    }
}

/// A [`ShardedMiner`] whose operation stream is journaled to a WAL, with
/// periodic snapshot checkpoints. See the module docs for the recovery
/// and loss-window contract.
pub struct DurableMiner {
    inner: ShardedMiner,
    wal: Arc<Mutex<Wal>>,
    path: PathBuf,
    cfg: DurableConfig,
    events: u64,
    ops: u64,
    ckpt_seq: u64,
    /// `(seq, anchor LSN)` of the surviving (unpruned) checkpoints,
    /// oldest first — at most two. Compaction keeps everything the
    /// older one still replays from.
    anchors: Vec<(u64, Lsn)>,
}

impl DurableMiner {
    /// Create a fresh durable miner logging to `path` (truncates any
    /// existing log).
    pub fn create(path: &Path, cfg: DurableConfig) -> Result<DurableMiner, WalError> {
        DurableMiner::create_instrumented(path, cfg, &Registry::disabled())
    }

    /// [`DurableMiner::create`] with observability: the WAL's `wal.*`
    /// metrics and the inner miner's `stream.*` metrics register under
    /// `reg`.
    pub fn create_instrumented(
        path: &Path,
        cfg: DurableConfig,
        reg: &Registry,
    ) -> Result<DurableMiner, WalError> {
        let mut wal = Wal::create(path)?;
        wal.instrument(WalMetrics::new(&reg.scope("wal")));
        let inner = ShardedMiner::spawn_instrumented(cfg.stream.clone(), reg);
        Ok(DurableMiner::assemble(
            inner,
            wal,
            path,
            cfg,
            0,
            0,
            0,
            Vec::new(),
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        mut inner: ShardedMiner,
        wal: Wal,
        path: &Path,
        cfg: DurableConfig,
        events: u64,
        ops: u64,
        ckpt_seq: u64,
        anchors: Vec<(u64, Lsn)>,
    ) -> DurableMiner {
        let wal = Arc::new(Mutex::new(wal));
        inner.set_sink(Box::new(WalLogger {
            wal: Arc::clone(&wal),
        }));
        DurableMiner {
            inner,
            wal,
            path: path.to_path_buf(),
            cfg,
            events,
            ops,
            ckpt_seq,
            anchors,
        }
    }

    /// Journal and route one access. Panics if the log can no longer be
    /// written (a durable tier must not silently degrade to a lossy one).
    pub fn ingest(&mut self, req: Request, path: Option<&FilePath>) {
        self.inner.route(req, path);
        self.events += 1;
        self.ops += 1;
        if self.cfg.checkpoint_interval > 0
            && self.events.is_multiple_of(self.cfg.checkpoint_interval)
        {
            // lint: allow(panic) a failed checkpoint leaves recovery
            // replaying the full log — correct but unbounded; failing
            // loudly here is the durability contract
            self.checkpoint().expect("wal checkpoint failed");
        }
    }

    /// Convenience: journal and route a trace event.
    pub fn ingest_event(&mut self, trace: &Trace, e: &TraceEvent) {
        self.ingest(Request::from_event(e), trace.path_of(e.file));
    }

    /// Journal and route a forget tombstone.
    pub fn forget(&mut self, file: FileId) {
        self.inner.route_forget(file);
        self.ops += 1;
    }

    /// Barrier + group-commit: everything ingested so far is mined and
    /// durable when this returns.
    pub fn flush(&mut self) {
        self.inner.flush();
        self.wal
            .lock()
            // lint: allow(panic) a poisoned WAL lock means an appender
            // panicked mid-write; continuing would risk a torn log
            .expect("wal lock poisoned")
            .sync()
            // lint: allow(panic) flush() promises the prefix is on disk;
            // returning with the promise broken is not an option
            .expect("wal sync failed");
    }

    /// Consistent snapshot of the wrapped miner (also group-commits the
    /// logged prefix, since the snapshot dispatches it).
    pub fn snapshot(&mut self) -> StreamSnapshot {
        self.inner.snapshot()
    }

    /// Take a checkpoint now: persist the full state image at this
    /// consistent cut (serving snapshot + every shard's bit-exact
    /// [`MinerState`]) into the sidecar, append the CHECKPOINT record
    /// referencing it, and sync. The record's LSN becomes the
    /// checkpoint's anchor: recovery from this image replays only the
    /// log past it. Keeps the last two sidecars, pruning older ones,
    /// and compacts the log when the config asks for it.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        let (snap, states) = self.inner.export_full();
        let bytes = encode_image(&snap, &states);
        self.ckpt_seq += 1;
        let info = CheckpointInfo {
            seq: self.ckpt_seq,
            events: self.events,
            ops: self.ops,
            snapshot_len: bytes.len() as u64,
            snapshot_crc: crc32(&bytes),
        };
        write_durable(&sidecar_path(&self.path, info.seq), &bytes)?;
        let anchor = {
            // lint: allow(panic) poisoned-WAL policy: see log_event above
            let mut wal = self.wal.lock().expect("wal lock poisoned");
            let lsn = wal.append(record_kind::CHECKPOINT, &encode_checkpoint(&info))?;
            wal.sync()?;
            lsn
        };
        self.anchors.push((info.seq, anchor));
        if self.anchors.len() > 2 {
            self.anchors.remove(0);
        }
        if self.ckpt_seq > 2 {
            let _ = fs::remove_file(sidecar_path(&self.path, self.ckpt_seq - 2));
        }
        if self.cfg.compact_on_checkpoint {
            self.compact()?;
        }
        Ok(())
    }

    /// Drop WAL pages no surviving checkpoint needs: everything wholly
    /// before the anchor of the *older* of the two retained
    /// checkpoints (so the fallback image stays replayable). No-op
    /// until a checkpoint exists.
    pub fn compact(&mut self) -> Result<WalCompaction, WalError> {
        let keep = match self.anchors.len() {
            0 => return Ok(WalCompaction::default()),
            1 => self.anchors[0].1,
            n => self.anchors[n - 2].1,
        };
        self.wal
            .lock()
            // lint: allow(panic) a poisoned WAL lock means an appender
            // panicked mid-write; continuing would risk a torn log
            .expect("wal lock poisoned")
            .compact_before(keep)
    }

    /// Events ingested (journaled) so far.
    pub fn events_logged(&self) -> u64 {
        self.events
    }

    /// Operations (ingests + forgets) journaled so far.
    pub fn ops_logged(&self) -> u64 {
        self.ops
    }

    /// Logical size of the log in bytes (including unsynced appends).
    pub fn wal_len_bytes(&self) -> u64 {
        // lint: allow(panic) poisoned-WAL policy: see log_event above
        self.wal.lock().expect("wal lock poisoned").len_bytes()
    }

    /// The log file path.
    pub fn wal_path(&self) -> &Path {
        &self.path
    }

    /// The active configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.cfg
    }

    /// Access the wrapped miner.
    pub fn miner(&mut self) -> &mut ShardedMiner {
        &mut self.inner
    }

    /// Simulate a process crash: the unsynced WAL buffer is dropped on
    /// the floor (as a power cut would) and the miner is torn down. The
    /// on-disk state is exactly what the last completed sync left.
    pub fn crash(self) {
        // lint: allow(panic) poisoned-WAL policy: see log_event above
        self.wal.lock().expect("wal lock poisoned").abandon();
    }
}

/// Read and validate a checkpoint's sidecar image: present, length and
/// CRC matching the log record, and decodable.
fn load_image(wal: &Path, c: &CheckpointInfo) -> Option<(StreamSnapshot, Vec<MinerState>)> {
    let bytes = fs::read(sidecar_path(wal, c.seq)).ok()?;
    if bytes.len() as u64 != c.snapshot_len || crc32(&bytes) != c.snapshot_crc {
        return None;
    }
    decode_image(&bytes).ok()
}

/// Standalone log compaction: open the log at `path`, find the newest
/// two checkpoints whose sidecar images validate, and drop every page
/// wholly before the older one's anchor. A log with no valid image is
/// left untouched (genesis replay may still need LSN 1).
pub fn compact(path: &Path) -> Result<WalCompaction, WalError> {
    let (mut wal, entries, _) = Wal::open(path)?;
    let mut valid: Vec<Lsn> = Vec::new();
    for e in &entries {
        if e.kind == record_kind::CHECKPOINT {
            if let Ok(c) = decode_checkpoint(&e.payload) {
                if load_image(path, &c).is_some() {
                    valid.push(e.lsn);
                }
            }
        }
    }
    let keep = match valid.len() {
        0 => return Ok(WalCompaction::default()),
        1 => valid[0],
        n => valid[n - 2],
    };
    wal.compact_before(keep)
}

/// Recover a durable miner from its log: scan (dropping any torn tail),
/// restore the newest valid checkpoint image, replay only the WAL
/// suffix past its anchor LSN, and return the miner positioned to keep
/// logging where the survivor left off. A truncated or corrupt image
/// falls back to the next-older one, then to genesis replay while the
/// log still starts at LSN 1; a compacted log with no loadable image is
/// an error (state would be silently wrong otherwise).
pub fn recover(
    path: &Path,
    cfg: DurableConfig,
) -> Result<(DurableMiner, RecoveryReport), WalError> {
    recover_instrumented(path, cfg, &Registry::disabled())
}

/// [`recover`] with observability: replay counters and latency land
/// under `wal.*` (`wal.recoveries`, `wal.recovery_replay_events`,
/// `wal.recovery_ns`), alongside the reopened log's own metrics.
pub fn recover_instrumented(
    path: &Path,
    cfg: DurableConfig,
    reg: &Registry,
) -> Result<(DurableMiner, RecoveryReport), WalError> {
    let t0 = Instant::now();
    let wal_scope = reg.scope("wal");
    let (mut wal, entries, tail) = Wal::open(path)?;
    wal.instrument(WalMetrics::new(&wal_scope));

    let mut ops: Vec<(Lsn, WalOp)> = Vec::with_capacity(entries.len());
    let mut ckpts: Vec<(Lsn, CheckpointInfo)> = Vec::new();
    for e in &entries {
        match e.kind {
            record_kind::OP => match decode_op(&e.payload) {
                Ok(op) => ops.push((e.lsn, op)),
                // A checksum-verified record that fails to decode is a
                // codec-version mismatch; stop replaying rather than
                // rebuild a wrong state.
                Err(_) => break,
            },
            record_kind::CHECKPOINT => {
                if let Ok(c) = decode_checkpoint(&e.payload) {
                    ckpts.push((e.lsn, c));
                }
            }
            _ => {}
        }
    }

    // Walk the checkpoint ladder newest → oldest: the first image that
    // exists, matches its recorded length and CRC, and decodes anchors
    // recovery.
    let mut fallbacks = 0u64;
    let mut anchor: Option<(Lsn, CheckpointInfo, StreamSnapshot, Vec<MinerState>)> = None;
    for (lsn, c) in ckpts.iter().rev() {
        match load_image(path, c) {
            Some((serving, states)) => {
                anchor = Some((*lsn, *c, serving, states));
                break;
            }
            None => fallbacks += 1,
        }
    }

    let (mut miner, anchor_lsn, anchor_info, serving) = match anchor {
        Some((lsn, info, serving, states)) => {
            let miner = ShardedMiner::spawn_restored_instrumented(cfg.stream.clone(), &states, reg);
            (miner, Some(lsn), Some(info), Some(serving))
        }
        None => {
            // Genesis replay is only exact while the log still starts
            // at LSN 1; a compacted prefix with no loadable image means
            // the state is unrecoverable, and saying so beats silently
            // rebuilding a wrong graph.
            if let Some(first) = entries.first() {
                if first.lsn != 1 {
                    return Err(WalError::Io(io::Error::other(format!(
                        "wal is compacted (first LSN {}) and no checkpoint image is loadable",
                        first.lsn
                    ))));
                }
            }
            let miner = ShardedMiner::spawn_instrumented(cfg.stream.clone(), reg);
            (miner, None, None, None)
        }
    };

    // Restore integrity self-check: the state rebuilt from the image
    // must equal the serving snapshot captured at the same cut.
    let verified = serving
        .as_ref()
        .map(|expect| snapshots_bitwise_equal(&miner.snapshot(), expect));

    let cut = anchor_lsn.unwrap_or(0);
    let mut ops_replayed = 0u64;
    let mut events_replayed = 0u64;
    for (lsn, op) in &ops {
        if *lsn <= cut {
            continue;
        }
        ops_replayed += 1;
        match op {
            WalOp::Ingest { req, path } => {
                miner.route(*req, path.as_ref());
                events_replayed += 1;
            }
            WalOp::Forget(f) => miner.route_forget(*f),
        }
    }
    miner.flush();
    let replay_ns = t0.elapsed().as_nanos() as u64;

    let ops_recovered = anchor_info.map_or(0, |c| c.ops) + ops_replayed;
    let events_recovered = anchor_info.map_or(0, |c| c.events) + events_replayed;

    wal_scope.counter("recoveries").inc();
    wal_scope
        .counter("recovery_replay_events")
        .add(events_replayed);
    wal_scope.counter("recovery_fallbacks").add(fallbacks);
    wal_scope.histogram("recovery_ns").record(replay_ns);
    if let Some(lsn) = anchor_lsn {
        wal_scope.gauge("anchor_lsn").set(lsn as i64);
    }

    let ckpt_seq = ckpts.last().map_or(0, |(_, c)| c.seq);
    let anchors: Vec<(u64, Lsn)> = ckpts
        .iter()
        .rev()
        .take(2)
        .rev()
        .map(|(lsn, c)| (c.seq, *lsn))
        .collect();
    let report = RecoveryReport {
        ops_replayed,
        events_replayed,
        ops_recovered,
        events_recovered,
        torn_tail: tail.torn,
        dropped_bytes: tail.dropped_bytes,
        checkpoint: anchor_info,
        anchor_lsn,
        fallbacks,
        checkpoint_verified: verified,
        serving_snapshot: serving,
        replay_ns,
    };
    let miner = DurableMiner::assemble(
        miner,
        wal,
        path,
        cfg,
        events_recovered,
        ops_recovered,
        ckpt_seq,
        anchors,
    );
    Ok((miner, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::WorkloadSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("durable-tests");
        std::fs::create_dir_all(&dir).expect("create durable test dir");
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        dir.join(format!("{tag}-{}-{n}.wal", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
            for seq in 0..64 {
                let _ = fs::remove_file(sidecar_path(&self.0, seq));
            }
        }
    }

    fn small_cfg(shards: usize) -> DurableConfig {
        let mut stream = StreamConfig::default()
            .with_shards(shards)
            .with_node_cap(1 << 20);
        stream.route_batch = 32;
        DurableConfig::new(stream)
    }

    #[test]
    fn op_codec_roundtrips() {
        let req = Request {
            file: FileId::new(7),
            uid: farmer_trace::UserId::new(1),
            pid: farmer_trace::ProcId::new(2),
            host: farmer_trace::HostId::new(3),
            dev: farmer_trace::DevId::new(4),
        };
        for op in [
            WalOp::Ingest { req, path: None },
            WalOp::Ingest {
                req,
                path: Some(FilePath::from_components(vec![5, 6, 7])),
            },
            WalOp::Forget(FileId::new(42)),
        ] {
            let bytes = encode_op(&op);
            assert_eq!(decode_op(&bytes).unwrap(), op);
        }
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[99, 0, 0]).is_err());
    }

    #[test]
    fn snapshot_codec_is_bit_exact() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("snapcodec");
        let _c = Cleanup(path.clone());
        let mut m = DurableMiner::create(&path, small_cfg(2)).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        let snap = m.snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert!(snapshots_bitwise_equal(&snap, &decoded));
    }

    #[test]
    fn durable_miner_state_equals_plain_miner() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("parity");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(2);
        let mut durable = DurableMiner::create(&path, cfg.clone()).unwrap();
        let mut plain = ShardedMiner::spawn(cfg.stream.clone());
        for (i, e) in trace.events.iter().enumerate() {
            if i % 61 == 0 {
                durable.forget(e.file);
                plain.route_forget(e.file);
            }
            durable.ingest_event(&trace, e);
            plain.route_event(&trace, e);
        }
        // Journaling must not perturb mining state in any way.
        assert!(snapshots_bitwise_equal(
            &durable.snapshot(),
            &plain.snapshot()
        ));
    }

    #[test]
    fn crash_loses_only_the_unsynced_tail_and_recovers_exactly() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let path = tmp_wal("crash");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(2);
        let batch = cfg.stream.route_batch;
        let kill = trace.len() * 2 / 3 + 7; // deliberately off-boundary
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in trace.events.iter().take(kill) {
            m.ingest_event(&trace, e);
        }
        m.crash();
        let synced = kill - kill % batch;

        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        assert_eq!(report.events_replayed, synced as u64);
        assert_eq!(report.events_recovered, synced as u64);
        assert_eq!(report.anchor_lsn, None, "no checkpoints: genesis replay");
        assert!(!report.torn_tail);

        // Oracle: an uninterrupted miner over exactly the synced prefix.
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in trace.events.iter().take(synced) {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));

        // And the recovered miner keeps going: finish the stream on both.
        for e in trace.events.iter().skip(synced) {
            recovered.ingest_event(&trace, e);
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }

    #[test]
    fn checkpoint_sidecar_serves_and_verifies() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("ckpt");
        let _c = Cleanup(path.clone());
        let interval = (trace.len() / 3) as u64;
        let cfg = small_cfg(1);
        let cfg = DurableConfig {
            checkpoint_interval: interval,
            ..cfg
        };
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.crash();

        let reg = Registry::enabled();
        let (_, report) = recover_instrumented(&path, cfg.clone(), &reg).unwrap();
        let ckpt = report.checkpoint.expect("checkpoint image loaded");
        assert!(ckpt.seq >= 2, "interval checkpoints fired");
        assert_eq!(report.checkpoint_verified, Some(true));
        assert_eq!(report.fallbacks, 0);
        let anchor = report.anchor_lsn.expect("anchored recovery");
        let serving = report.serving_snapshot.expect("image loaded");
        assert_eq!(serving.events, ckpt.events);
        // Suffix-only replay: bounded by the checkpoint interval plus
        // one route batch of slack, not the whole log.
        assert_eq!(
            report.events_recovered,
            ckpt.events + report.events_replayed
        );
        assert!(
            report.events_replayed <= interval + cfg.stream.route_batch as u64,
            "replayed {} events for interval {interval}",
            report.events_replayed
        );
        let obs = reg.snapshot();
        assert_eq!(obs.counter("wal.recoveries"), Some(1));
        assert_eq!(
            obs.counter("wal.recovery_replay_events"),
            Some(report.events_replayed)
        );
        assert_eq!(obs.gauge("wal.anchor_lsn"), Some(anchor as i64));
        assert!(obs.histogram("wal.recovery_ns").unwrap().count == 1);
    }

    #[test]
    fn recovery_tolerates_missing_sidecar() {
        let trace = WorkloadSpec::hp().scaled(0.005).generate();
        let path = tmp_wal("nosidecar");
        let _c = Cleanup(path.clone());
        let cfg = DurableConfig {
            checkpoint_interval: (trace.len() / 2) as u64,
            ..small_cfg(1)
        };
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.flush();
        drop(m);
        for seq in 0..16 {
            let _ = fs::remove_file(sidecar_path(&path, seq));
        }
        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        // Every rung of the image ladder fell through; genesis replay
        // (the log still starts at LSN 1) is still exact.
        assert!(report.serving_snapshot.is_none());
        assert_eq!(report.checkpoint_verified, None);
        assert_eq!(report.anchor_lsn, None);
        assert!(report.fallbacks >= 1);
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in &trace.events {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }

    #[test]
    fn image_codec_roundtrips_bit_exact() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("imagecodec");
        let _c = Cleanup(path.clone());
        let mut m = DurableMiner::create(&path, small_cfg(2)).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        let (serving, states) = m.miner().export_full();
        let bytes = encode_image(&serving, &states);
        let (dec_serving, dec_states) = decode_image(&bytes).unwrap();
        assert!(snapshots_bitwise_equal(&serving, &dec_serving));
        assert_eq!(states, dec_states);
        assert!(decode_image(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn recovery_from_compacted_log_is_exact() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("compacted");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(2)
            .with_checkpoint_interval((trace.len() / 4) as u64)
            .with_compaction(true);
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.flush();
        drop(m);

        // Compaction really dropped the prefix…
        let (entries, tail) = farmer_store::Wal::scan(&path).unwrap();
        assert!(!tail.torn);
        assert!(entries[0].lsn > 1, "log prefix was compacted away");

        // …and recovery from the suffix is still bitwise exact.
        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        assert!(report.anchor_lsn.is_some());
        assert_eq!(report.checkpoint_verified, Some(true));
        assert_eq!(report.events_recovered, trace.len() as u64);
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in &trace.events {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }

    #[test]
    fn corrupt_newest_image_falls_back_to_older() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("ladder");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(1).with_checkpoint_interval((trace.len() / 3) as u64);
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.flush();
        drop(m);

        // Flip a bit in the newest sidecar image (seq 3).
        let newest = sidecar_path(&path, 3);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&newest, &bytes).unwrap();

        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        assert_eq!(report.fallbacks, 1, "newest image rejected");
        assert_eq!(report.checkpoint.unwrap().seq, 2, "older image anchored");
        assert_eq!(report.checkpoint_verified, Some(true));
        assert_eq!(report.events_recovered, trace.len() as u64);
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in &trace.events {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }

    #[test]
    fn compacted_log_without_images_refuses_genesis() {
        let trace = WorkloadSpec::hp().scaled(0.005).generate();
        let path = tmp_wal("refuse");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(1)
            .with_checkpoint_interval((trace.len() / 3) as u64)
            .with_compaction(true);
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.flush();
        drop(m);
        for seq in 0..16 {
            let _ = fs::remove_file(sidecar_path(&path, seq));
        }
        // Prefix gone, images gone: genesis replay would silently build
        // the wrong state, so recovery must refuse.
        assert!(recover(&path, cfg).is_err());
    }

    #[test]
    fn standalone_compact_respects_surviving_checkpoints() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("standalone");
        let _c = Cleanup(path.clone());
        let interval = (trace.len() / 4) as u64;
        let cfg = small_cfg(1).with_checkpoint_interval(interval);
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.flush();
        drop(m);

        let report = compact(&path).unwrap();
        assert!(report.pages_dropped > 0);
        // Idempotent: a second pass has nothing left to reclaim beyond
        // at most the page boundary it already cut at.
        assert_eq!(compact(&path).unwrap().pages_dropped, 0);

        // Both surviving images remain anchored: corrupt the newest and
        // recovery still lands on the older one, bitwise exact.
        let newest = sidecar_path(&path, 4);
        let mut bytes = fs::read(&newest).unwrap();
        bytes[10] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.checkpoint.unwrap().seq, 3);
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in &trace.events {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }
}

//! # farmer-stream — sharded online correlation mining with bounded memory
//!
//! The paper presents FARMER as an *online* model — "an iterative process
//! that repeats itself for each incoming request" (§3.1) — but a model that
//! only batch-mines finite in-memory traces cannot serve the peta-scale /
//! millions-of-users target. This crate turns the miner into a long-running
//! service:
//!
//! * [`engine`] — [`StreamMiner`]: wraps the `farmer-core` observe path
//!   with **incremental eviction**: exponentially decayed access counters
//!   plus Space-Saving-style heavy-hitter retention, so the number of
//!   tracked files (graph nodes) never exceeds a configured cap and the
//!   edge count never exceeds `cap × max_successors` — all per-file state
//!   stays bounded however long the stream runs and however sparse the id
//!   universe (the graph's sparse slotted storage reclaims node slots on
//!   eviction; see the [`engine`] docs).
//! * [`shard`] — [`ShardedMiner`]: hash-partitions file ownership across
//!   `N` independent miner shards (the same Fx-hash routing
//!   `farmer-mds::cluster` uses for multi-MDS namespaces), each on its own
//!   worker thread behind a bounded channel. Every shard receives the full
//!   request stream so its look-ahead window carries the true global access
//!   order, but a shard only mines edges whose predecessor file it owns —
//!   the union of the shard graphs is **exactly** the graph one
//!   unpartitioned miner would build, while the expensive similarity and
//!   edge-update work splits ~1/N per shard.
//! * [`snapshot`] — [`StreamSnapshot`]: a consistent, merged view of every
//!   shard's Correlator Lists (consistent cut: all shards have processed
//!   precisely the events routed before the snapshot call). It exports a
//!   [`farmer_core::CorrelatorTable`], which `farmer-prefetch`'s FPA can
//!   swap in mid-simulation to refresh its predictions online.
//!
//! ## Quick start
//!
//! ```
//! use farmer_stream::{ShardedMiner, StreamConfig};
//! use farmer_trace::WorkloadSpec;
//!
//! let trace = WorkloadSpec::hp().scaled(0.01).generate();
//! let mut miner = ShardedMiner::spawn(StreamConfig::default().with_shards(2));
//! for e in trace.stream().take(3 * trace.len()) {
//!     miner.route_event(&trace, &e);
//! }
//! let snap = miner.snapshot();
//! assert!(snap.events > 0);
//! ```

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod durable;
pub mod engine;
pub mod metrics;
pub mod publish;
pub mod shard;
pub mod snapshot;

use farmer_core::FarmerConfig;

pub use durable::{
    compact, decode_image, encode_image, recover, recover_instrumented, snapshots_bitwise_equal,
    CheckpointInfo, DurableConfig, DurableMiner, RecoveryReport, WalOp,
};
pub use engine::{MinerState, StreamMiner};
pub use metrics::StreamMetrics;
pub use publish::{CellReader, SnapshotCell};
pub use shard::{ShardedMiner, WalSink};
pub use snapshot::{ShardSnapshot, StreamSnapshot};

/// Configuration of the streaming subsystem.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The wrapped miner's configuration (weights, window, successor cap,
    /// prune/decay cadence — see [`FarmerConfig`]).
    pub farmer: FarmerConfig,
    /// Hard cap on files tracked per shard. Graph nodes never exceed this,
    /// and edges never exceed `node_cap × farmer.max_successors`.
    pub node_cap: usize,
    /// Files evicted per eviction sweep (amortizes the incoming-edge
    /// cleanup). `0` selects `max(1, node_cap / 64)`.
    pub evict_batch: usize,
    /// Multiplier applied to every Space-Saving access counter each decay
    /// tick, so retention follows *recent* popularity instead of all-time
    /// popularity. `1.0` disables.
    pub count_decay: f64,
    /// Events between counter-decay ticks (`0` disables).
    pub decay_interval: u64,
    /// Number of miner shards ([`ShardedMiner::spawn`]).
    pub num_shards: usize,
    /// Bounded depth of each shard's inbox, in *batches* — the back-pressure
    /// knob: a slow shard eventually blocks the router instead of letting
    /// the queue grow without bound.
    pub channel_capacity: usize,
    /// Events per routed batch (channel-synchronization amortization).
    pub route_batch: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            farmer: FarmerConfig::default(),
            node_cap: 4096,
            evict_batch: 0,
            count_decay: 0.95,
            decay_interval: 8192,
            num_shards: 1,
            channel_capacity: 64,
            route_batch: 256,
        }
    }
}

impl StreamConfig {
    /// Builder-style miner-config override.
    #[must_use]
    pub fn with_farmer(mut self, farmer: FarmerConfig) -> Self {
        self.farmer = farmer;
        self
    }

    /// Builder-style node-cap override.
    #[must_use]
    pub fn with_node_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "node_cap must be positive");
        self.node_cap = cap;
        self
    }

    /// Builder-style shard-count override.
    #[must_use]
    pub fn with_shards(mut self, n: usize) -> Self {
        assert!(n > 0, "num_shards must be positive");
        self.num_shards = n;
        self
    }

    /// The effective eviction batch size.
    pub fn effective_evict_batch(&self) -> usize {
        if self.evict_batch > 0 {
            self.evict_batch.min(self.node_cap)
        } else {
            (self.node_cap / 64).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = StreamConfig::default();
        assert!(c.node_cap > 0);
        assert!(c.effective_evict_batch() >= 1);
        assert!(c.effective_evict_batch() <= c.node_cap);
        assert_eq!(c.num_shards, 1);
    }

    #[test]
    fn evict_batch_auto_and_explicit() {
        let auto = StreamConfig::default().with_node_cap(640);
        assert_eq!(auto.effective_evict_batch(), 10);
        let tiny = StreamConfig::default().with_node_cap(3);
        assert_eq!(tiny.effective_evict_batch(), 1);
        let mut explicit = StreamConfig::default().with_node_cap(8);
        explicit.evict_batch = 100;
        assert_eq!(explicit.effective_evict_batch(), 8, "clamped to cap");
    }

    #[test]
    #[should_panic(expected = "node_cap must be positive")]
    fn zero_cap_rejected() {
        let _ = StreamConfig::default().with_node_cap(0);
    }
}

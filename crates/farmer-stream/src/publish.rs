//! Epoch-swapped snapshot publication: one miner, many wait-free readers.
//!
//! [`crate::ShardedMiner::snapshot`] hands a consistent cut to *one*
//! consumer. A serving tier needs the opposite fan-out: one miner
//! publishing, N reader threads each serving queries from the current
//! snapshot without locks or allocation on their hot path. [`SnapshotCell`]
//! is that publication point:
//!
//! * **Install is O(1).** The miner wraps its snapshot in an
//!   [`Arc`] and [`SnapshotCell::install`]s it: one bounded critical
//!   section that swaps the `Arc` and bumps the epoch counter. Cost is
//!   independent of snapshot size and reader count.
//! * **Reads are wait-free on the hot path.** Each reader holds a
//!   [`CellReader`] caching the `Arc` of the last epoch it picked up.
//!   Serving a query while the epoch is unchanged — the steady state
//!   between publications — is one atomic load plus a query against the
//!   cached snapshot: no lock, no reference-count traffic, no allocation.
//!   Only when the epoch has advanced does the reader take the cell's
//!   publication lock for one bounded `Arc` clone (a reference-count
//!   bump — still no allocation), once per swap, never while serving.
//! * **Version monotonicity is guaranteed.** The cell's epoch strictly
//!   increases, [`SnapshotCell::install`] rejects a snapshot whose stream
//!   position regresses, and a [`CellReader`] only ever replaces its
//!   cached snapshot with a strictly newer epoch — so no reader observes
//!   time running backwards, and no reader can observe a torn snapshot
//!   (the unit of publication is the `Arc` swap; snapshots are immutable
//!   once installed).
//!
//! Old snapshots are reclaimed by reference counting: when the last
//! reader drops (or replaces) its cached `Arc`, the superseded snapshot
//! frees itself — no grace periods, no reclamation thread.
//!
//! The serving tier built on this cell lives in `crates/farmer-serve`;
//! the cell itself lives here, next to [`StreamSnapshot`], because
//! publication is the streaming subsystem's side of the contract
//! ([`crate::ShardedMiner::publish_into`] is the miner-side hook).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::StreamSnapshot;

/// The epoch-swapped publication point between one miner and N readers.
///
/// Create once, share via [`Arc`]: the miner (or serving tier) calls
/// [`SnapshotCell::install`], each reader thread obtains a [`CellReader`]
/// with [`SnapshotCell::reader`]. Epoch 0 is the empty pre-publication
/// state (an empty [`StreamSnapshot`], zero correlations served).
#[derive(Debug)]
pub struct SnapshotCell {
    /// Number of installs so far; strictly increasing. Readers compare
    /// this against their cached epoch to decide whether to re-clone.
    epoch: AtomicU64,
    /// The current snapshot. Locked only to swap (install) or to pick up
    /// a new epoch (reader cold path) — never while serving a query.
    current: Mutex<Arc<StreamSnapshot>>,
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

impl SnapshotCell {
    /// An empty cell at epoch 0.
    pub fn new() -> SnapshotCell {
        SnapshotCell {
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::new(StreamSnapshot::default())),
        }
    }

    /// Publish `snap` as the new current snapshot and return the new
    /// epoch. O(1): one `Arc` swap under a bounded critical section.
    ///
    /// # Panics
    /// Panics if `snap` reflects a shorter stream prefix than the
    /// currently installed snapshot — publications must move forward.
    pub fn install(&self, snap: Arc<StreamSnapshot>) -> u64 {
        // lint: allow(panic) a poisoned lock means a publisher panicked
        // mid-install; serving stale data silently would be worse
        let mut cur = self.current.lock().expect("snapshot cell poisoned");
        assert!(
            snap.events >= cur.events,
            "snapshot publication regressed: events {} -> {}",
            cur.events,
            snap.events
        );
        *cur = snap;
        // Bumped inside the critical section so (epoch, snapshot) pairs
        // read under the same lock are always coherent.
        // ord: Release pairs with the reader's Acquire epoch load — a
        // reader that sees the new epoch sees the snapshot swap above
        // (the lock it then takes orders the rest).
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The current epoch (0 before the first install).
    pub fn epoch(&self) -> u64 {
        // ord: Acquire pairs with install's Release bump, so an observed
        // epoch implies the matching snapshot is visible.
        self.epoch.load(Ordering::Acquire)
    }

    /// The current (epoch, snapshot) pair. Takes the publication lock —
    /// this is the reader *cold* path and the one-shot consumer API;
    /// per-query serving goes through [`CellReader`].
    pub fn load(&self) -> (u64, Arc<StreamSnapshot>) {
        // lint: allow(panic) poisoned cell — same policy as install()
        let cur = self.current.lock().expect("snapshot cell poisoned");
        // ord: under the publication lock the epoch cannot move, so this
        // Acquire load (pairing with install's Release) reads the value
        // coherent with `cur`.
        (self.epoch.load(Ordering::Acquire), cur.clone())
    }

    /// Register a reader: a handle caching the current snapshot, to be
    /// owned by one reader thread.
    pub fn reader(self: &Arc<Self>) -> CellReader {
        let (seen, cached) = self.load();
        CellReader {
            cell: Arc::clone(self),
            seen,
            cached,
        }
    }
}

/// One reader thread's handle onto a [`SnapshotCell`].
///
/// Every serving method first calls [`CellReader::refresh`] — one atomic
/// epoch load in the steady state — so queries always run against the
/// newest published snapshot while staying wait-free and allocation-free
/// between publications.
#[derive(Debug)]
pub struct CellReader {
    cell: Arc<SnapshotCell>,
    seen: u64,
    cached: Arc<StreamSnapshot>,
}

impl CellReader {
    /// Pick up the latest epoch if one was published since the last call.
    /// Returns `true` if the cached snapshot changed. Hot path (epoch
    /// unchanged): one atomic load, nothing else.
    #[inline]
    pub fn refresh(&mut self) -> bool {
        // ord: Acquire pairs with install's Release bump; observing a new
        // epoch guarantees the lock-protected reload below sees at least
        // that publication.
        let published = self.cell.epoch.load(Ordering::Acquire);
        if published == self.seen {
            return false;
        }
        let (epoch, snap) = self.cell.load();
        // The lock round-trip can only observe the epoch we saw or a
        // newer one; regression would be a cell bug, not a race.
        assert!(
            epoch > self.seen && snap.events >= self.cached.events,
            "snapshot cell epoch regressed: {} -> {epoch}",
            self.seen
        );
        self.seen = epoch;
        self.cached = snap;
        true
    }

    /// The epoch of the snapshot this reader currently serves from.
    pub fn epoch_seen(&self) -> u64 {
        self.seen
    }

    /// The current snapshot (refreshing first).
    pub fn current(&mut self) -> &StreamSnapshot {
        self.refresh();
        &self.cached
    }

    /// The cached snapshot without refreshing (what the last `refresh`
    /// picked up) — a reference-count bump, no allocation.
    pub fn cached(&self) -> Arc<StreamSnapshot> {
        Arc::clone(&self.cached)
    }

    /// The cell this reader is registered on.
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::CorrelationSource;

    fn snap_at(events: u64) -> Arc<StreamSnapshot> {
        Arc::new(StreamSnapshot {
            events,
            shards: 1,
            ..StreamSnapshot::default()
        })
    }

    #[test]
    fn install_bumps_epoch_and_load_pairs_coherently() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.epoch(), 0);
        let (e, s) = cell.load();
        assert_eq!((e, s.events), (0, 0));
        assert_eq!(cell.install(snap_at(10)), 1);
        assert_eq!(cell.install(snap_at(10)), 2, "equal prefix re-publishes");
        assert_eq!(cell.install(snap_at(25)), 3);
        let (e, s) = cell.load();
        assert_eq!((e, s.events), (3, 25));
    }

    #[test]
    #[should_panic(expected = "snapshot publication regressed")]
    fn install_rejects_stream_regression() {
        let cell = SnapshotCell::new();
        cell.install(snap_at(100));
        cell.install(snap_at(99));
    }

    #[test]
    fn reader_caches_until_epoch_changes() {
        let cell = Arc::new(SnapshotCell::new());
        cell.install(snap_at(5));
        let mut r = cell.reader();
        assert_eq!(r.epoch_seen(), 1);
        assert!(!r.refresh(), "no new epoch published");
        assert_eq!(r.current().events, 5);
        cell.install(snap_at(9));
        assert!(r.refresh());
        assert_eq!(r.epoch_seen(), 2);
        assert_eq!(r.cached().events, 9);
        assert!(!r.refresh());
    }

    #[test]
    fn reader_skips_intermediate_epochs_monotonically() {
        let cell = Arc::new(SnapshotCell::new());
        let mut r = cell.reader();
        for i in 1..=10u64 {
            cell.install(snap_at(i * 7));
        }
        assert!(r.refresh());
        assert_eq!(r.epoch_seen(), 10, "jumps straight to the newest epoch");
        assert_eq!(r.current().events, 70);
    }

    #[test]
    fn published_snapshot_serves_queries_through_the_reader() {
        // End to end through a real miner: mine, publish, query via the
        // reader's cached Arc (Arc<StreamSnapshot> is a CorrelationSource).
        let trace = farmer_trace::WorkloadSpec::hp().scaled(0.01).generate();
        let mut miner = crate::ShardedMiner::spawn(crate::StreamConfig::default().with_shards(2));
        for e in &trace.events {
            miner.route_event(&trace, e);
        }
        let cell = Arc::new(SnapshotCell::new());
        let epoch = miner.publish_into(&cell);
        assert_eq!(epoch, 1);
        let mut r = cell.reader();
        let snap = r.current();
        assert_eq!(snap.events, trace.len() as u64);
        let shared = r.cached();
        assert_eq!(shared.version(), trace.len() as u64);
        let mut out = Vec::new();
        let mut served = 0;
        for f in 0..trace.num_files() as u32 {
            shared.top_k_into(farmer_trace::FileId::new(f), 4, 0.0, &mut out);
            served += out.len();
        }
        assert!(served > 0, "published snapshot serves no correlations");
    }
}

//! The bounded-memory streaming miner: one shard's engine.
//!
//! [`StreamMiner`] wraps a [`Farmer`] and enforces a hard budget on the
//! state the miner may retain, using the two mechanisms tiered-storage and
//! metadata-analytics systems rely on for per-file state at scale:
//!
//! * **Space-Saving-style heavy-hitter retention** — every *owned* file
//!   carries an access counter. When a new file arrives at a full table,
//!   the lowest-count files are evicted (in amortizing batches) and the
//!   newcomer inherits the smallest evicted count as its starting value —
//!   the classic Space-Saving over-count bound, which guarantees genuinely
//!   hot files are never displaced by a parade of cold ones.
//! * **Exponential decay** — counters are periodically multiplied by
//!   `count_decay < 1`, so retention ranks files by *recent* heat rather
//!   than all-time totals, and the wrapped miner's own `decay`/`prune`
//!   configuration ages edge masses the same way.
//!
//! Eviction is *complete*: a victim's access count, learned path, node,
//! incoming edges and window entries all go (via [`Farmer::forget_files`]),
//! so a later access re-admits it as a brand-new file. The invariants the
//! property tests pin down:
//!
//! * active graph nodes ≤ `node_cap`,
//! * live edges ≤ `node_cap × max_successors`,
//!
//! for *any* input stream, however long and however many distinct files.
//!
//! **Scope of the bound.** The cap is unconditional. The correlation
//! graph stores nodes in sparse slotted storage (id→slot index over a
//! dense slab of live nodes) and the model keeps learned paths in a
//! sparse map, so *all* per-file state — edges, paths, counters, access
//! totals, node slots — is reclaimed by eviction and resident memory is
//! O(node_cap) even over open-ended id universes. Decay is equally cheap:
//! [`farmer_core::CorrelationGraph::age`] advances a global log-scale
//! epoch in O(1) and nodes absorb it lazily on touch, so the shard's
//! periodic maintenance touches only live state.

use farmer_core::{CorrelatorList, Farmer, FarmerState, Request};
use farmer_trace::hash::{fx_hash_u64, FxHashMap};
use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::metrics::StreamMetrics;
use crate::snapshot::ShardSnapshot;
use crate::StreamConfig;

/// Does `shard_id` (of `num_shards`) own `file`? Mirrors the Fx-hash
/// namespace routing of `farmer-mds::cluster`'s `Partition::Hash`.
#[inline]
pub fn owns_file(file: FileId, shard_id: usize, num_shards: usize) -> bool {
    num_shards <= 1 || (fx_hash_u64(u64::from(file.raw())) as usize) % num_shards == shard_id
}

/// Full state image of one [`StreamMiner`]: the wrapped model's exact
/// state (see [`farmer_core::state`]) plus the shard's retention
/// counters and stream-position accounting. Floating-point values are
/// raw `f64` bits so a restored miner continues the stream bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct MinerState {
    /// Shard identity the image was taken under (ownership partitioning
    /// is part of the state).
    pub shard_id: u32,
    /// Fleet width the image was taken under.
    pub num_shards: u32,
    /// Events ingested (owned or not).
    pub events_seen: u64,
    /// Events whose file this shard owns.
    pub owned_events: u64,
    /// Files evicted so far.
    pub evictions: u64,
    /// Space-Saving over-estimation floor (raw bits).
    pub count_floor: u64,
    /// Retention counters as `(file id, count bits)`, sorted by id.
    pub counts: Vec<(u32, u64)>,
    /// The wrapped model's state.
    pub farmer: FarmerState,
}

/// One shard's bounded-memory online miner.
#[derive(Debug)]
pub struct StreamMiner {
    cfg: StreamConfig,
    farmer: Farmer,
    shard_id: usize,
    num_shards: usize,
    /// Space-Saving access counters for the owned, currently-tracked files.
    counts: FxHashMap<u32, f64>,
    /// Count inherited by newcomers (the smallest count evicted so far):
    /// the Space-Saving over-estimation floor.
    count_floor: f64,
    events_seen: u64,
    owned_events: u64,
    evictions: u64,
    obs: StreamMetrics,
}

impl StreamMiner {
    /// A standalone (unsharded) miner: owns every file.
    pub fn new(cfg: StreamConfig) -> Self {
        Self::for_shard(cfg, 0, 1)
    }

    /// The miner for `shard_id` of `num_shards`; it accounts only for files
    /// it owns, but expects to receive the *full* event stream so its
    /// look-ahead window carries the global access order.
    pub fn for_shard(cfg: StreamConfig, shard_id: usize, num_shards: usize) -> Self {
        assert!(shard_id < num_shards, "shard_id out of range");
        let farmer = Farmer::new(cfg.farmer.clone());
        StreamMiner {
            cfg,
            farmer,
            shard_id,
            num_shards,
            counts: FxHashMap::default(),
            count_floor: 0.0,
            events_seen: 0,
            owned_events: 0,
            evictions: 0,
            obs: StreamMetrics::default(),
        }
    }

    /// Attach live observability handles (a no-op set is installed by
    /// default). Shards of one [`crate::ShardedMiner`] share one set, so
    /// the counters report fleet totals.
    pub fn instrument(&mut self, obs: StreamMetrics) {
        self.obs = obs;
    }

    /// Does this miner own `file`?
    #[inline]
    pub fn owns(&self, file: FileId) -> bool {
        owns_file(file, self.shard_id, self.num_shards)
    }

    /// Ingest one request. `path` (when the front-end knows it) must be
    /// supplied on every call, exactly as [`Farmer::observe`] expects.
    pub fn ingest(&mut self, req: Request, path: Option<&FilePath>) {
        self.events_seen += 1;
        if self.owns(req.file) {
            self.owned_events += 1;
            self.obs.events_mined.inc();
            self.admit(req.file);
        }
        let (shard_id, num_shards) = (self.shard_id, self.num_shards);
        self.farmer
            .observe_where(req, path, |f| owns_file(f, shard_id, num_shards));

        if self.cfg.decay_interval > 0
            && self.events_seen.is_multiple_of(self.cfg.decay_interval)
            && self.cfg.count_decay < 1.0
        {
            for c in self.counts.values_mut() {
                *c *= self.cfg.count_decay;
            }
            self.count_floor *= self.cfg.count_decay;
            self.obs.decay_ticks.inc();
        }
    }

    /// Convenience: ingest a trace event (runs the Stage-1 extractor).
    pub fn ingest_event(&mut self, trace: &Trace, e: &TraceEvent) {
        let req = Request::from_event(e);
        self.ingest(req, trace.path_of(e.file));
    }

    /// Drop every trace of `file`: its retention counter (if this shard
    /// owns it) and all model state — node, edges, learned path and
    /// look-ahead window entries (via [`Farmer::forget_files`]).
    ///
    /// This is the unlink/churn hook: applied at the same stream position
    /// in every shard, the union of the shard models stays exactly equal
    /// to a batch miner that forgets at that position. Unknown files are a
    /// no-op. Forgets are maintenance, not accesses: they do not count
    /// toward [`StreamMiner::events_seen`].
    pub fn forget(&mut self, file: FileId) {
        self.counts.remove(&file.raw());
        self.farmer.forget_files(&[file]);
        self.obs.forgets.inc();
    }

    /// Bump `file`'s counter, admitting (and evicting) as needed.
    fn admit(&mut self, file: FileId) {
        if let Some(c) = self.counts.get_mut(&file.raw()) {
            *c += 1.0;
            return;
        }
        if self.counts.len() >= self.cfg.node_cap {
            self.evict_batch();
        }
        self.counts.insert(file.raw(), self.count_floor + 1.0);
    }

    /// Evict the lowest-count files in one amortizing sweep and raise the
    /// Space-Saving floor to the largest count evicted.
    fn evict_batch(&mut self) {
        let batch = self.cfg.effective_evict_batch().min(self.counts.len());
        if batch == 0 {
            return;
        }
        let mut entries: Vec<(u32, f64)> = self.counts.iter().map(|(&f, &c)| (f, c)).collect();
        // Break count ties by file id: the victim *set* must be a pure
        // function of the counter contents, never of hash-map iteration
        // order — a checkpoint-restored miner rebuilds the map with a
        // different insertion history and must still evict identically.
        entries.select_nth_unstable_by(batch - 1, |a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let victims: Vec<FileId> = entries[..batch]
            .iter()
            .map(|&(f, _)| FileId::new(f))
            .collect();
        let evicted_max = entries[..batch]
            .iter()
            .map(|&(_, c)| c)
            .fold(self.count_floor, f64::max);
        for v in &victims {
            self.counts.remove(&v.raw());
        }
        self.farmer.forget_files(&victims);
        self.count_floor = evicted_max;
        self.evictions += batch as u64;
        self.obs.evictions.add(batch as u64);
    }

    /// A consistent snapshot of this shard's state: every tracked owned
    /// file's Correlator List (empty lists omitted) plus counters.
    pub fn snapshot(&self) -> ShardSnapshot {
        let _span = self.obs.snapshot_build_ns.span();
        let mut lists: Vec<CorrelatorList> = self
            .counts
            .keys()
            .filter_map(|&raw| {
                let list = self.farmer.correlators(FileId::new(raw));
                (!list.is_empty()).then_some(list)
            })
            .collect();
        lists.sort_by_key(|l| l.owner.raw());
        ShardSnapshot {
            shard_id: self.shard_id,
            lists,
            events_seen: self.events_seen,
            owned_events: self.owned_events,
            tracked_files: self.counts.len(),
            evictions: self.evictions,
            state_bytes: self.state_bytes(),
        }
    }

    /// Export this shard's full state as a plain-data image for
    /// checkpointing. [`StreamMiner::from_state`] is the inverse; the
    /// round trip preserves every future mining decision bit for bit.
    pub fn export_state(&self) -> MinerState {
        let mut counts: Vec<(u32, u64)> = self
            .counts
            .iter()
            .map(|(&f, &c)| (f, c.to_bits()))
            .collect();
        counts.sort_unstable_by_key(|(f, _)| *f);
        MinerState {
            shard_id: self.shard_id as u32,
            num_shards: self.num_shards as u32,
            events_seen: self.events_seen,
            owned_events: self.owned_events,
            evictions: self.evictions,
            count_floor: self.count_floor.to_bits(),
            counts,
            farmer: self.farmer.export_state(),
        }
    }

    /// Rebuild a shard miner from an exported image under `cfg`, which
    /// must match the configuration the image was taken under (the WAL
    /// replay contract). The shard identity comes from the image itself.
    pub fn from_state(cfg: StreamConfig, state: &MinerState) -> StreamMiner {
        let shard_id = state.shard_id as usize;
        let num_shards = state.num_shards as usize;
        assert!(shard_id < num_shards.max(1), "shard_id out of range");
        let farmer = Farmer::from_state(cfg.farmer.clone(), &state.farmer);
        StreamMiner {
            cfg,
            farmer,
            shard_id,
            num_shards,
            counts: state
                .counts
                .iter()
                .map(|&(f, c)| (f, f64::from_bits(c)))
                .collect(),
            count_floor: f64::from_bits(state.count_floor),
            events_seen: state.events_seen,
            owned_events: state.owned_events,
            evictions: state.evictions,
            obs: StreamMetrics::default(),
        }
    }

    /// The wrapped model (diagnostics, tests).
    pub fn farmer(&self) -> &Farmer {
        &self.farmer
    }

    /// Number of currently tracked (owned, live) files. Never exceeds the
    /// configured `node_cap`.
    pub fn tracked_files(&self) -> usize {
        self.counts.len()
    }

    /// Total events ingested (owned or not).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Events whose file this shard owns.
    pub fn owned_events(&self) -> u64 {
        self.owned_events
    }

    /// Total files evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate resident heap bytes: the wrapped model plus the
    /// counter table.
    pub fn state_bytes(&self) -> usize {
        self.farmer.memory_bytes() + self.counts.len() * (std::mem::size_of::<(u32, f64)>() + 8)
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::{DevId, HostId, ProcId, UserId, WorkloadSpec};

    fn req(file: u32, uid: u32) -> Request {
        Request {
            file: FileId::new(file),
            uid: UserId::new(uid),
            pid: ProcId::new(uid),
            host: HostId::new(0),
            dev: DevId::new(0),
        }
    }

    fn small_cfg(cap: usize) -> StreamConfig {
        StreamConfig::default().with_node_cap(cap)
    }

    #[test]
    fn cap_is_never_exceeded() {
        let cap = 16;
        let mut m = StreamMiner::new(small_cfg(cap));
        for i in 0..5_000u32 {
            m.ingest(req(i % 400, i % 7), None);
            assert!(
                m.tracked_files() <= cap,
                "tracked {} > cap",
                m.tracked_files()
            );
            assert!(m.farmer().graph().active_nodes() <= cap);
            let max_edges = cap * m.config().farmer.max_successors;
            assert!(m.farmer().graph().num_edges() <= max_edges);
        }
        assert!(m.evictions() > 0, "400 distinct files must force evictions");
    }

    #[test]
    fn heavy_hitters_survive_cold_parade() {
        // Two hot files interleaved with a stream of one-shot cold files:
        // Space-Saving retention must keep the hot pair tracked throughout.
        let mut m = StreamMiner::new(small_cfg(8));
        for cold in 100u32..2_100 {
            m.ingest(req(0, 1), None);
            m.ingest(req(1, 1), None);
            m.ingest(req(cold, 1), None);
        }
        let snap = m.snapshot();
        let hot = snap.lists.iter().find(|l| l.owner == FileId::new(0));
        assert!(hot.is_some(), "hot file evicted by cold parade");
        assert!(m.tracked_files() <= 8);
    }

    #[test]
    fn eviction_is_complete_and_readmission_works() {
        let mut m = StreamMiner::new(small_cfg(4));
        // Build up correlations among files 0..4, then flood with new ones.
        for _ in 0..50 {
            for f in 0..4 {
                m.ingest(req(f, 1), None);
            }
        }
        for f in 10..200u32 {
            for _ in 0..20 {
                m.ingest(req(f, 2), None);
                m.ingest(req(f + 1000, 2), None);
            }
        }
        // The early files are gone entirely from graph + counters.
        assert!(m.tracked_files() <= 4);
        assert!(m.farmer().graph().active_nodes() <= 4);
        // Re-admission of an evicted file works and is fresh.
        m.ingest(req(0, 1), None);
        assert!(m.counts.contains_key(&0));
    }

    #[test]
    fn unsharded_miner_matches_batch_farmer() {
        // With a cap no stream can hit, the stream engine is just Farmer.
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let cfg = StreamConfig::default().with_node_cap(1 << 20);
        let mut m = StreamMiner::new(cfg.clone());
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        let batch = Farmer::mine_trace(&trace, cfg.farmer.clone());
        assert_eq!(m.farmer().graph().num_edges(), batch.graph().num_edges());
        for f in 0..trace.num_files() as u32 {
            let a = m.farmer().correlators(FileId::new(f));
            let b = batch.correlators(FileId::new(f));
            assert_eq!(a.len(), b.len(), "list length diverged for f{f}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.file, y.file);
                assert!((x.degree - y.degree).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn count_decay_shifts_retention_to_recent_heat() {
        // File 0 is hot early then never again; files 50.. are hot late.
        // With decay, the stale hot file must eventually be evictable.
        let mut cfg = small_cfg(4);
        cfg.count_decay = 0.5;
        cfg.decay_interval = 64;
        let mut m = StreamMiner::new(cfg);
        for _ in 0..300 {
            m.ingest(req(0, 1), None);
        }
        for round in 0..400u32 {
            for f in 50..56 {
                m.ingest(req(f, 2), None);
            }
            let _ = round;
        }
        assert!(
            !m.counts.contains_key(&0),
            "stale hot file survived decayed retention"
        );
    }

    #[test]
    fn snapshot_reports_owned_live_lists_only() {
        let mut m = StreamMiner::new(small_cfg(64));
        for _ in 0..30 {
            m.ingest(req(1, 1), None);
            m.ingest(req(2, 1), None);
        }
        let snap = m.snapshot();
        assert_eq!(snap.shard_id, 0);
        assert_eq!(snap.events_seen, 60);
        assert_eq!(snap.owned_events, 60);
        assert!(snap.tracked_files >= 2);
        assert!(snap.state_bytes > 0);
        for l in &snap.lists {
            assert!(!l.is_empty());
            assert!(m.counts.contains_key(&l.owner.raw()));
        }
    }

    fn shard_snapshots_bitwise_equal(a: &ShardSnapshot, b: &ShardSnapshot) -> bool {
        a.shard_id == b.shard_id
            && a.events_seen == b.events_seen
            && a.owned_events == b.owned_events
            && a.tracked_files == b.tracked_files
            && a.evictions == b.evictions
            && a.lists.len() == b.lists.len()
            && a.lists.iter().zip(&b.lists).all(|(la, lb)| {
                la.owner == lb.owner
                    && la.len() == lb.len()
                    && la.iter().zip(lb.iter()).all(|(ca, cb)| {
                        ca.file == cb.file && ca.degree.to_bits() == cb.degree.to_bits()
                    })
            })
    }

    #[test]
    fn state_roundtrip_continues_bitwise() {
        // Export mid-stream (with eviction, decay and forgets all active),
        // restore, and feed the identical suffix to both miners: every
        // future decision must match bit for bit.
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let mut cfg = small_cfg(256);
        cfg.count_decay = 0.9;
        cfg.decay_interval = 97;
        let mut original = StreamMiner::new(cfg.clone());
        let cut = trace.len() / 2;
        for (i, e) in trace.events.iter().take(cut).enumerate() {
            if i % 113 == 0 {
                original.forget(e.file);
            }
            original.ingest_event(&trace, e);
        }
        let state = original.export_state();
        assert_eq!(state.events_seen, cut as u64);
        let mut restored = StreamMiner::from_state(cfg, &state);
        assert_eq!(restored.export_state(), state, "round trip not identity");
        for (i, e) in trace.events.iter().enumerate().skip(cut) {
            if i % 113 == 0 {
                original.forget(e.file);
                restored.forget(e.file);
            }
            original.ingest_event(&trace, e);
            restored.ingest_event(&trace, e);
        }
        assert!(
            shard_snapshots_bitwise_equal(&original.snapshot(), &restored.snapshot()),
            "restored miner diverged from the original"
        );
        assert_eq!(original.export_state(), restored.export_state());
    }

    #[test]
    fn sharded_ownership_partitions_disjointly() {
        let n = 4;
        for f in 0..1000u32 {
            let owners: Vec<usize> = (0..n)
                .filter(|&s| owns_file(FileId::new(f), s, n))
                .collect();
            assert_eq!(owners.len(), 1, "file {f} owned by {owners:?}");
        }
    }
}

//! The crash-point matrix: kill the durable miner at every Kth event
//! across checkpoint boundaries, recover, and assert the recovered state
//! is bitwise-identical to an uninterrupted oracle — at 1, 2, and 4
//! shards, with and without memory caps, and under torn-write tails.
//!
//! The oracle construction mirrors the durability contract exactly: the
//! WAL's loss window is "operations since the last completed sync", so
//! the oracle is a plain (non-durable) miner fed the *first
//! `ops_replayed`* operations of the same stream — recovery must land on
//! that prefix's state bit for bit, never on some almost-right hybrid.

use std::path::PathBuf;

use farmer_stream::{
    recover, snapshots_bitwise_equal, DurableConfig, DurableMiner, ShardedMiner, StreamConfig,
};
use farmer_trace::{FileId, Trace, WorkloadSpec};

/// One logical operation of the test stream: an event index or a forget.
#[derive(Clone, Copy)]
enum Op {
    Ev(usize),
    Forget(FileId),
}

/// The op stream: the trace's events with forget tombstones interleaved
/// every 97th event (exercising both record types at every crash point).
fn build_ops(trace: &Trace) -> Vec<Op> {
    let mut ops = Vec::with_capacity(trace.len() + trace.len() / 97 + 1);
    for (i, e) in trace.events.iter().enumerate() {
        if i % 97 == 0 {
            ops.push(Op::Forget(e.file));
        }
        ops.push(Op::Ev(i));
    }
    ops
}

fn feed_durable(m: &mut DurableMiner, trace: &Trace, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Ev(i) => m.ingest_event(trace, &trace.events[i]),
            Op::Forget(f) => m.forget(f),
        }
    }
}

fn feed_plain(m: &mut ShardedMiner, trace: &Trace, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Ev(i) => m.route_event(trace, &trace.events[i]),
            Op::Forget(f) => m.route_forget(f),
        }
    }
}

fn wal_path(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("crash-matrix");
    std::fs::create_dir_all(&dir).expect("create crash-matrix tmp dir");
    dir.join(format!("{tag}-{}.wal", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for seq in 0..64u64 {
        let _ = std::fs::remove_file(PathBuf::from(format!("{}.ckpt{seq}", path.display())));
    }
}

fn config(shards: usize, node_cap: usize, trace_len: usize) -> DurableConfig {
    let mut stream = StreamConfig::default()
        .with_shards(shards)
        .with_node_cap(node_cap);
    stream.route_batch = 32;
    // Interval chosen so the kill grid crosses several checkpoint
    // boundaries (kills land before, between, and after checkpoints).
    DurableConfig::new(stream).with_checkpoint_interval((trace_len / 4) as u64)
}

/// Kill at `kill` ops, recover, and assert parity with an oracle fed the
/// recovered prefix. Returns how many ops the recovery replayed.
fn crash_recover_assert(
    tag: &str,
    trace: &Trace,
    ops: &[Op],
    cfg: &DurableConfig,
    kill: usize,
    continue_after: bool,
) -> u64 {
    let path = wal_path(tag);
    cleanup(&path);
    let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
    feed_durable(&mut m, trace, &ops[..kill]);
    m.crash();

    let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover");
    let replayed = report.ops_replayed as usize;
    assert!(replayed <= kill, "{tag}: replayed past the kill point");
    // The loss window is bounded by one route batch plus the tombstones
    // interleaved within it.
    let max_loss = cfg.stream.route_batch * 2;
    assert!(
        kill - replayed <= max_loss,
        "{tag}: lost {} ops at kill {kill}, more than a batch window",
        kill - replayed
    );
    if let Some(v) = report.checkpoint_verified {
        assert!(v, "{tag}: checkpoint verification failed at kill {kill}");
    }

    let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
    feed_plain(&mut oracle, trace, &ops[..replayed]);
    assert!(
        snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
        "{tag}: recovered state diverged from oracle at kill {kill} (replayed {replayed})"
    );

    if continue_after {
        // The recovered miner is a going concern: finishing the stream
        // must keep it bit-identical to the oracle doing the same.
        feed_durable(&mut recovered, trace, &ops[replayed..]);
        feed_plain(&mut oracle, trace, &ops[replayed..]);
        assert!(
            snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
            "{tag}: post-recovery stream diverged at kill {kill}"
        );
    }
    cleanup(&path);
    report.ops_replayed
}

#[test]
fn kill_grid_recovers_bitwise_at_every_shard_count() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let step = (ops.len() / 7).max(1);
    for shards in [1usize, 2, 4] {
        let cfg = config(shards, 1 << 20, trace.len());
        let mut kill = step;
        let mut k = 0;
        while kill < ops.len() {
            crash_recover_assert(
                &format!("grid-s{shards}-k{k}"),
                &trace,
                &ops,
                &cfg,
                kill,
                // Exercise the keep-going path once per shard count.
                k == 2,
            );
            kill += step;
            k += 1;
        }
    }
}

#[test]
fn kill_grid_recovers_bitwise_with_capped_eviction() {
    // Eviction tie-breaks depend on map insertion history; replay feeds
    // the identical history, so even capped (Space-Saving) state must
    // recover bit for bit.
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let step = (ops.len() / 5).max(1);
    for shards in [1usize, 2] {
        let cfg = config(shards, 256, trace.len());
        let mut kill = step;
        while kill < ops.len() {
            crash_recover_assert(
                &format!("capped-s{shards}-k{kill}"),
                &trace,
                &ops,
                &cfg,
                kill,
                false,
            );
            kill += step;
        }
    }
}

#[test]
fn kills_straddling_checkpoint_boundaries_recover_bitwise() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let cfg = config(2, 1 << 20, trace.len());
    let interval = cfg.checkpoint_interval as usize;
    // Kill exactly at, just before, and just after each checkpoint cut.
    let mut kills = Vec::new();
    let mut cut = interval;
    while cut < ops.len() {
        for k in [cut.saturating_sub(1), cut, cut + 1, cut + 33] {
            if k > 0 && k < ops.len() {
                kills.push(k);
            }
        }
        cut += interval;
    }
    for kill in kills {
        crash_recover_assert(
            &format!("straddle-k{kill}"),
            &trace,
            &ops,
            &cfg,
            kill,
            false,
        );
    }
}

#[test]
fn torn_tails_recover_the_valid_prefix_bitwise() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let cfg = config(2, 1 << 20, trace.len());
    let kill = ops.len() * 2 / 3;

    // Three tear flavors: a chopped write, trailing garbage from a
    // half-written block, and a flipped bit inside the synced tail.
    for (mode, tag) in [(0u8, "chop"), (1, "garbage"), (2, "flip")] {
        let path = wal_path(&format!("torn-{tag}"));
        cleanup(&path);
        let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
        feed_durable(&mut m, &trace, &ops[..kill]);
        m.crash();

        let mut data = std::fs::read(&path).expect("read wal");
        match mode {
            0 => {
                data.truncate(data.len() - 11);
            }
            1 => {
                data.extend_from_slice(&[0xA5; 97]);
            }
            _ => {
                let idx = data.len() - 40;
                data[idx] ^= 0x10;
            }
        }
        std::fs::write(&path, &data).expect("rewrite wal");

        let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover");
        assert!(report.torn_tail, "torn-{tag}: tail not reported torn");
        assert!(report.dropped_bytes > 0);
        let replayed = report.ops_replayed as usize;
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        feed_plain(&mut oracle, &trace, &ops[..replayed]);
        assert!(
            snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
            "torn-{tag}: recovered state diverged from oracle"
        );
        cleanup(&path);
    }
}

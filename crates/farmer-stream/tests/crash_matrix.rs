//! The crash-point matrix: kill the durable miner at every Kth event
//! across checkpoint boundaries, recover, and assert the recovered state
//! is bitwise-identical to an uninterrupted oracle — at 1, 2, and 4
//! shards, with and without memory caps, with and without log
//! compaction, and under torn-write tails, torn checkpoint images, and
//! interrupted compactions.
//!
//! The oracle construction mirrors the durability contract exactly: the
//! WAL's loss window is "operations since the last completed sync", so
//! the oracle is a plain (non-durable) miner fed the *first
//! `ops_recovered`* operations of the same stream — recovery must land
//! on that prefix's state bit for bit, never on some almost-right
//! hybrid. When a checkpoint image anchors recovery, the replay must
//! additionally be *suffix-only*: bounded by the checkpoint interval,
//! not the log length.

use std::path::PathBuf;

use farmer_stream::{
    recover, snapshots_bitwise_equal, DurableConfig, DurableMiner, ShardedMiner, StreamConfig,
};
use farmer_trace::{FileId, Trace, WorkloadSpec};

/// One logical operation of the test stream: an event index or a forget.
#[derive(Clone, Copy)]
enum Op {
    Ev(usize),
    Forget(FileId),
}

/// The op stream: the trace's events with forget tombstones interleaved
/// every 97th event (exercising both record types at every crash point).
fn build_ops(trace: &Trace) -> Vec<Op> {
    let mut ops = Vec::with_capacity(trace.len() + trace.len() / 97 + 1);
    for (i, e) in trace.events.iter().enumerate() {
        if i % 97 == 0 {
            ops.push(Op::Forget(e.file));
        }
        ops.push(Op::Ev(i));
    }
    ops
}

fn feed_durable(m: &mut DurableMiner, trace: &Trace, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Ev(i) => m.ingest_event(trace, &trace.events[i]),
            Op::Forget(f) => m.forget(f),
        }
    }
}

fn feed_plain(m: &mut ShardedMiner, trace: &Trace, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Ev(i) => m.route_event(trace, &trace.events[i]),
            Op::Forget(f) => m.route_forget(f),
        }
    }
}

fn wal_path(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("crash-matrix");
    std::fs::create_dir_all(&dir).expect("create crash-matrix tmp dir");
    dir.join(format!("{tag}-{}.wal", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for seq in 0..64u64 {
        let _ = std::fs::remove_file(PathBuf::from(format!("{}.ckpt{seq}", path.display())));
    }
}

fn config(shards: usize, node_cap: usize, trace_len: usize) -> DurableConfig {
    let mut stream = StreamConfig::default()
        .with_shards(shards)
        .with_node_cap(node_cap);
    stream.route_batch = 32;
    // Interval chosen so the kill grid crosses several checkpoint
    // boundaries (kills land before, between, and after checkpoints).
    DurableConfig::new(stream).with_checkpoint_interval((trace_len / 4) as u64)
}

/// Kill at `kill` ops, recover, and assert parity with an oracle fed the
/// recovered prefix. When a checkpoint image anchored the recovery, also
/// assert the replay was suffix-only (bounded by the checkpoint
/// interval, not the log length). Returns how many ops the recovery
/// replayed.
fn crash_recover_assert(
    tag: &str,
    trace: &Trace,
    ops: &[Op],
    cfg: &DurableConfig,
    kill: usize,
    continue_after: bool,
) -> u64 {
    let path = wal_path(tag);
    cleanup(&path);
    let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
    feed_durable(&mut m, trace, &ops[..kill]);
    m.crash();

    let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover");
    let recovered_ops = report.ops_recovered as usize;
    assert!(
        recovered_ops <= kill,
        "{tag}: recovered past the kill point"
    );
    // The loss window is bounded by one route batch plus the tombstones
    // interleaved within it.
    let max_loss = cfg.stream.route_batch * 2;
    assert!(
        kill - recovered_ops <= max_loss,
        "{tag}: lost {} ops at kill {kill}, more than a batch window",
        kill - recovered_ops
    );
    if let Some(v) = report.checkpoint_verified {
        assert!(v, "{tag}: checkpoint verification failed at kill {kill}");
    }
    if report.anchor_lsn.is_some() {
        // Suffix-only replay: at most one checkpoint interval of events
        // plus its interleaved tombstones (and batch slack).
        let interval = cfg.checkpoint_interval as usize;
        let max_suffix = interval + interval / 97 + 1 + cfg.stream.route_batch;
        assert!(
            report.ops_replayed as usize <= max_suffix,
            "{tag}: replayed {} ops from an anchored recovery (interval {interval})",
            report.ops_replayed
        );
        assert_eq!(
            report.ops_recovered,
            report.checkpoint.expect("anchored").ops + report.ops_replayed,
            "{tag}: anchor cut + suffix must add up"
        );
    }

    let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
    feed_plain(&mut oracle, trace, &ops[..recovered_ops]);
    assert!(
        snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
        "{tag}: recovered state diverged from oracle at kill {kill} (recovered {recovered_ops})"
    );

    if continue_after {
        // The recovered miner is a going concern: finishing the stream
        // must keep it bit-identical to the oracle doing the same.
        feed_durable(&mut recovered, trace, &ops[recovered_ops..]);
        feed_plain(&mut oracle, trace, &ops[recovered_ops..]);
        assert!(
            snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
            "{tag}: post-recovery stream diverged at kill {kill}"
        );
    }
    cleanup(&path);
    report.ops_replayed
}

#[test]
fn kill_grid_recovers_bitwise_at_every_shard_count() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let step = (ops.len() / 7).max(1);
    for shards in [1usize, 2, 4] {
        let cfg = config(shards, 1 << 20, trace.len());
        let mut kill = step;
        let mut k = 0;
        while kill < ops.len() {
            crash_recover_assert(
                &format!("grid-s{shards}-k{k}"),
                &trace,
                &ops,
                &cfg,
                kill,
                // Exercise the keep-going path once per shard count.
                k == 2,
            );
            kill += step;
            k += 1;
        }
    }
}

#[test]
fn kill_grid_recovers_bitwise_with_capped_eviction() {
    // Eviction tie-breaks depend on map insertion history; replay feeds
    // the identical history, so even capped (Space-Saving) state must
    // recover bit for bit.
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let step = (ops.len() / 5).max(1);
    for shards in [1usize, 2] {
        let cfg = config(shards, 256, trace.len());
        let mut kill = step;
        while kill < ops.len() {
            crash_recover_assert(
                &format!("capped-s{shards}-k{kill}"),
                &trace,
                &ops,
                &cfg,
                kill,
                false,
            );
            kill += step;
        }
    }
}

#[test]
fn kills_straddling_checkpoint_boundaries_recover_bitwise() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let cfg = config(2, 1 << 20, trace.len());
    let interval = cfg.checkpoint_interval as usize;
    // Kill exactly at, just before, and just after each checkpoint cut.
    let mut kills = Vec::new();
    let mut cut = interval;
    while cut < ops.len() {
        for k in [cut.saturating_sub(1), cut, cut + 1, cut + 33] {
            if k > 0 && k < ops.len() {
                kills.push(k);
            }
        }
        cut += interval;
    }
    for kill in kills {
        crash_recover_assert(
            &format!("straddle-k{kill}"),
            &trace,
            &ops,
            &cfg,
            kill,
            false,
        );
    }
}

#[test]
fn torn_tails_recover_the_valid_prefix_bitwise() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let cfg = config(2, 1 << 20, trace.len());
    let kill = ops.len() * 2 / 3;

    // Three tear flavors: a chopped write, trailing garbage from a
    // half-written block, and a flipped bit inside the synced tail.
    for (mode, tag) in [(0u8, "chop"), (1, "garbage"), (2, "flip")] {
        let path = wal_path(&format!("torn-{tag}"));
        cleanup(&path);
        let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
        feed_durable(&mut m, &trace, &ops[..kill]);
        m.crash();

        let mut data = std::fs::read(&path).expect("read wal");
        match mode {
            0 => {
                data.truncate(data.len() - 11);
            }
            1 => {
                data.extend_from_slice(&[0xA5; 97]);
            }
            _ => {
                let idx = data.len() - 40;
                data[idx] ^= 0x10;
            }
        }
        std::fs::write(&path, &data).expect("rewrite wal");

        let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover");
        assert!(report.torn_tail, "torn-{tag}: tail not reported torn");
        assert!(report.dropped_bytes > 0);
        let recovered_ops = report.ops_recovered as usize;
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        feed_plain(&mut oracle, &trace, &ops[..recovered_ops]);
        assert!(
            snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
            "torn-{tag}: recovered state diverged from oracle"
        );
        cleanup(&path);
    }
}

#[test]
fn kill_grid_with_compaction_recovers_bitwise() {
    // Same grid, but the log is compacted behind every checkpoint: the
    // genesis prefix is gone, so recovery *must* come from an image plus
    // suffix replay — and still land bit-for-bit on the oracle.
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let step = (ops.len() / 5).max(1);
    for shards in [1usize, 2] {
        let cfg = config(shards, 1 << 20, trace.len()).with_compaction(true);
        let mut kill = step;
        let mut k = 0;
        while kill < ops.len() {
            crash_recover_assert(
                &format!("compact-s{shards}-k{k}"),
                &trace,
                &ops,
                &cfg,
                kill,
                k == 1,
            );
            kill += step;
            k += 1;
        }
    }
}

#[test]
fn mid_checkpoint_write_kills_fall_back_down_the_ladder() {
    // A crash mid-checkpoint leaves a torn image (truncated sidecar, or
    // a stray tmp file, or a sidecar with no log record). Each flavor
    // must fall back cleanly and still recover bitwise.
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let cfg = config(2, 1 << 20, trace.len());
    let kill = ops.len() * 9 / 10; // past the third checkpoint
    let sidecar = |path: &PathBuf, seq: u64| PathBuf::from(format!("{}.ckpt{seq}", path.display()));

    for tag in ["truncated", "deleted", "stray", "all-gone"] {
        let path = wal_path(&format!("midckpt-{tag}"));
        cleanup(&path);
        let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
        feed_durable(&mut m, &trace, &ops[..kill]);
        m.crash();

        // The newest surviving checkpoint is seq 3 (interval = len/4,
        // kill at 90%); seq 2 is the retained fallback.
        let newest = sidecar(&path, 3);
        assert!(newest.exists(), "midckpt-{tag}: expected sidecar seq 3");
        match tag {
            "truncated" => {
                // Torn mid-write: half the image made it to disk.
                let bytes = std::fs::read(&newest).unwrap();
                std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
            }
            "deleted" => {
                std::fs::remove_file(&newest).unwrap();
            }
            "stray" => {
                // Killed before the atomic rename: a partial tmp image
                // sits next to an intact sidecar. Recovery must ignore
                // the tmp and use the real image with zero fallbacks.
                std::fs::write(
                    PathBuf::from(format!("{}.tmp", newest.display())),
                    [0xEEu8; 100],
                )
                .unwrap();
            }
            _ => {
                // Every image gone: the uncompacted log still replays
                // from genesis.
                std::fs::remove_file(&newest).unwrap();
                std::fs::remove_file(sidecar(&path, 2)).unwrap();
            }
        }

        let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover");
        match tag {
            "truncated" | "deleted" => {
                assert_eq!(report.fallbacks, 1, "midckpt-{tag}");
                assert_eq!(report.checkpoint.expect("older image").seq, 2);
                assert_eq!(report.checkpoint_verified, Some(true));
            }
            "stray" => {
                assert_eq!(report.fallbacks, 0, "midckpt-{tag}");
                assert_eq!(report.checkpoint.expect("newest image").seq, 3);
            }
            _ => {
                // Ladder tried seq 3, seq 2, and the already-pruned
                // seq 1 before giving up and replaying from genesis.
                assert_eq!(report.fallbacks, 3, "midckpt-{tag}");
                assert!(report.checkpoint.is_none());
                assert_eq!(report.anchor_lsn, None);
            }
        }
        let recovered_ops = report.ops_recovered as usize;
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        feed_plain(&mut oracle, &trace, &ops[..recovered_ops]);
        assert!(
            snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
            "midckpt-{tag}: recovered state diverged from oracle"
        );
        cleanup(&path);
        let _ = std::fs::remove_file(PathBuf::from(format!("{}.tmp", newest.display())));
    }
}

#[test]
fn mid_compaction_kills_leave_a_recoverable_log() {
    // Compaction rewrites the log via tmp+rename: a kill before the
    // rename leaves the original log plus a partial tmp; a kill after
    // leaves the compacted log. Both must recover bitwise.
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let ops = build_ops(&trace);
    let cfg = config(1, 1 << 20, trace.len());
    let kill = ops.len() * 4 / 5;

    let path = wal_path("midcompact");
    cleanup(&path);
    let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
    feed_durable(&mut m, &trace, &ops[..kill]);
    m.crash();

    // Kill "before the rename": a half-written compacted image next to
    // the untouched log must change nothing.
    let tmp = path.with_extension("wal.compact-tmp");
    std::fs::write(&tmp, [0x77u8; 333]).unwrap();
    let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover with stray tmp");
    let recovered_ops = report.ops_recovered as usize;
    let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
    feed_plain(&mut oracle, &trace, &ops[..recovered_ops]);
    assert!(
        snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
        "stray compact tmp perturbed recovery"
    );
    drop(recovered);
    let _ = std::fs::remove_file(&tmp);

    // Kill "after the rename": compact for real, then recover from the
    // suffix-only log.
    let compaction = farmer_stream::compact(&path).expect("standalone compact");
    assert!(compaction.pages_dropped > 0, "compaction reclaimed nothing");
    let (mut recovered, report2) = recover(&path, cfg.clone()).expect("recover compacted");
    assert!(report2.anchor_lsn.is_some(), "compacted log must anchor");
    assert_eq!(report2.ops_recovered as usize, recovered_ops);
    assert!(
        snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
        "post-compaction recovery diverged from oracle"
    );
    cleanup(&path);
}

#[test]
fn early_checkpoint_compaction_is_a_noop_until_pages_accumulate() {
    // A checkpoint anchored on the first data page has nothing to drop;
    // compaction must no-op (never corrupt the log) and start reclaiming
    // once later checkpoints move the anchor past whole pages.
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let path = wal_path("earlyckpt");
    cleanup(&path);
    let mut stream = StreamConfig::default()
        .with_shards(1)
        .with_node_cap(1 << 20);
    stream.route_batch = 32;
    let cfg = DurableConfig::new(stream).with_checkpoint_interval(8);
    let mut m = DurableMiner::create(&path, cfg.clone()).expect("create durable miner");
    for e in trace.events.iter().take(8) {
        m.ingest_event(&trace, e);
    }
    // Anchor sits on the first data page: zero droppable pages.
    let first = m.compact().expect("compact");
    assert_eq!(first.pages_dropped, 0);

    for e in trace.events.iter().skip(8).take(1000) {
        m.ingest_event(&trace, e);
    }
    let later = m.compact().expect("compact");
    assert!(later.pages_dropped > 0, "anchor moved, pages reclaimable");
    m.flush();
    drop(m);

    let (mut recovered, report) = recover(&path, cfg.clone()).expect("recover");
    assert_eq!(report.events_recovered, 1008);
    let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
    for e in trace.events.iter().take(1008) {
        oracle.route_event(&trace, e);
    }
    assert!(
        snapshots_bitwise_equal(&recovered.snapshot(), &oracle.snapshot()),
        "recovery after no-op + real compaction diverged"
    );
    cleanup(&path);
}

//! The trace container: an event stream plus the file namespace it refers to.

use crate::event::TraceEvent;
use crate::ids::{DevId, FileId};
use crate::path::{FilePath, PathInterner};

/// Which paper trace a synthetic trace models. Used by presets, reporting
/// and the benchmark harness to label results the way the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFamily {
    /// Lawrence Livermore National Laboratory parallel scientific workload:
    /// >800 dual-processor nodes, heavy I/O, many concurrent ranks.
    Llnl,
    /// Instructional HP-UX lab: 20 machines, undergraduate class accounts,
    /// highly regular program file-sets. No path information recorded.
    Ins,
    /// Research desktops: 13 machines, grad students/faculty/staff, diverse
    /// workloads. No path information recorded.
    Res,
    /// HP Labs time-sharing server: 236 users, full path information.
    Hp,
}

impl TraceFamily {
    /// All four families in the paper's usual presentation order.
    pub const ALL: [TraceFamily; 4] = [
        TraceFamily::Llnl,
        TraceFamily::Ins,
        TraceFamily::Res,
        TraceFamily::Hp,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceFamily::Llnl => "LLNL",
            TraceFamily::Ins => "INS",
            TraceFamily::Res => "RES",
            TraceFamily::Hp => "HP",
        }
    }

    /// Whether this trace family records full file paths. INS and RES
    /// identify files only by `(file id, device id)` (paper §5.3).
    pub fn has_paths(self) -> bool {
        matches!(self, TraceFamily::Llnl | TraceFamily::Hp)
    }

    /// Parse a display name (case-insensitive).
    pub fn from_name(name: &str) -> Option<TraceFamily> {
        TraceFamily::ALL
            .into_iter()
            .find(|f| f.name().eq_ignore_ascii_case(name))
    }
}

/// Static per-file information (the trace "namespace").
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Full path if the trace family records paths.
    pub path: Option<FilePath>,
    /// Device/volume the file lives on.
    pub dev: DevId,
    /// File size in bytes (drives the data-layout experiments).
    pub size: u64,
    /// Whether the file is effectively read-only over the trace (eligible
    /// for FARMER-enabled grouped layout, paper §4.2).
    pub read_only: bool,
}

impl FileMeta {
    /// Approximate heap bytes for space-overhead accounting.
    pub fn heap_bytes(&self) -> usize {
        self.path.as_ref().map_or(0, FilePath::heap_bytes)
    }
}

/// A complete trace: ordered events plus the namespace they reference.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Which paper trace this models.
    pub family: TraceFamily,
    /// Human-readable label (family name plus generator parameters).
    pub label: String,
    /// The ordered event stream.
    pub events: Vec<TraceEvent>,
    /// Per-file static metadata, indexed by `FileId`.
    pub files: Vec<FileMeta>,
    /// Interner for path components (shared by all `files[..].path`).
    pub paths: PathInterner,
    /// Number of distinct users appearing in the trace.
    pub num_users: u32,
    /// Number of distinct hosts appearing in the trace.
    pub num_hosts: u32,
}

impl Trace {
    /// An empty trace shell for the given family.
    pub fn empty(family: TraceFamily) -> Self {
        Trace {
            family,
            label: family.name().to_string(),
            events: Vec::new(),
            files: Vec::new(),
            paths: PathInterner::new(),
            num_users: 0,
            num_hosts: 0,
        }
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct files in the namespace.
    #[inline]
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Path of a file, if this trace family records paths.
    #[inline]
    pub fn path_of(&self, file: FileId) -> Option<&FilePath> {
        self.files[file.index()].path.as_ref()
    }

    /// Metadata record of a file.
    #[inline]
    pub fn meta_of(&self, file: FileId) -> &FileMeta {
        &self.files[file.index()]
    }

    /// Validate internal invariants; used by tests and after parsing.
    ///
    /// Checks that event sequence numbers are dense, timestamps are
    /// monotonically non-decreasing, and every referenced file exists.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_ts = 0;
        for (i, e) in self.events.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(format!("event {i} has seq {}", e.seq));
            }
            if e.timestamp_us < last_ts {
                return Err(format!("event {i} timestamp goes backwards"));
            }
            last_ts = e.timestamp_us;
            if e.file.index() >= self.files.len() {
                return Err(format!("event {i} references unknown file {}", e.file));
            }
        }
        if self.family.has_paths() {
            for (i, f) in self.files.iter().enumerate() {
                if f.path.is_none() {
                    return Err(format!("file {i} missing path in path-bearing trace"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::ids::{FileId, HostId, ProcId, UserId};

    fn ev(seq: u64, file: u32) -> TraceEvent {
        TraceEvent::synthetic(
            seq,
            FileId::new(file),
            UserId::new(0),
            ProcId::new(0),
            HostId::new(0),
        )
    }

    fn meta() -> FileMeta {
        FileMeta {
            path: None,
            dev: DevId::new(0),
            size: 0,
            read_only: true,
        }
    }

    #[test]
    fn family_names_roundtrip() {
        for f in TraceFamily::ALL {
            assert_eq!(TraceFamily::from_name(f.name()), Some(f));
            assert_eq!(TraceFamily::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(TraceFamily::from_name("nope"), None);
    }

    #[test]
    fn path_availability_matches_paper() {
        assert!(TraceFamily::Hp.has_paths());
        assert!(TraceFamily::Llnl.has_paths());
        assert!(!TraceFamily::Ins.has_paths());
        assert!(!TraceFamily::Res.has_paths());
    }

    #[test]
    fn validate_accepts_wellformed() {
        let mut t = Trace::empty(TraceFamily::Ins);
        t.files.push(meta());
        t.events.push(ev(0, 0));
        t.events.push(ev(1, 0));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_seq() {
        let mut t = Trace::empty(TraceFamily::Ins);
        t.files.push(meta());
        t.events.push(ev(3, 0));
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_file() {
        let mut t = Trace::empty(TraceFamily::Ins);
        t.events.push(ev(0, 9));
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_paths_when_required() {
        let mut t = Trace::empty(TraceFamily::Hp);
        t.files.push(meta()); // no path, but HP requires one
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_time_travel() {
        let mut t = Trace::empty(TraceFamily::Ins);
        t.files.push(meta());
        let mut e0 = ev(0, 0);
        e0.timestamp_us = 100;
        let mut e1 = ev(1, 0);
        e1.timestamp_us = 50;
        t.events.push(e0);
        t.events.push(e1);
        assert!(t.validate().is_err());
    }
}

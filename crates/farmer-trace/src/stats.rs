//! Successor-probability statistics (paper §2.2, Figure 1).
//!
//! The paper quantifies how much each semantic attribute is associated with
//! file correlations: "we keep track of access sequences for different
//! semantic attributes separately, and then compute the probability of
//! inter-file accesses within these different sequences". Concretely, for a
//! chosen attribute the trace is partitioned into substreams by attribute
//! value (e.g. one substream per user), and within each substream we measure
//! first-order successor predictability — the probability that the observed
//! successor of a file matches the historically most frequent successor of
//! that file. If an attribute is genuinely associated with correlations, its
//! substreams are more self-predictable than the raw interleaved stream
//! ("none"), which the paper reports as the lowest bar in every trace.

use crate::event::TraceEvent;
use crate::hash::FxHashMap;
use crate::trace::Trace;

/// An attribute (or none) used to partition a trace into substreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamFilter {
    /// No partitioning: the raw interleaved stream.
    None,
    /// One substream per user id.
    User,
    /// One substream per process id.
    Process,
    /// One substream per host id.
    Host,
    /// One substream per top-level project directory (requires paths).
    /// For `/home/u3/proj-1/...` the key is the first two components.
    Path,
    /// One substream per device id (the locality signal INS/RES carry).
    Dev,
}

impl StreamFilter {
    /// Filters applicable to a given trace (Path requires path info).
    pub fn applicable(trace: &Trace) -> Vec<StreamFilter> {
        let mut v = vec![
            StreamFilter::None,
            StreamFilter::User,
            StreamFilter::Process,
            StreamFilter::Host,
        ];
        if trace.family.has_paths() {
            v.push(StreamFilter::Path);
        } else {
            v.push(StreamFilter::Dev);
        }
        v
    }

    /// Display label used in Figure 1 outputs.
    pub fn label(self) -> &'static str {
        match self {
            StreamFilter::None => "none",
            StreamFilter::User => "uid",
            StreamFilter::Process => "pid",
            StreamFilter::Host => "host",
            StreamFilter::Path => "path",
            StreamFilter::Dev => "dev",
        }
    }

    /// Substream key for an event under this filter.
    fn key(self, trace: &Trace, e: &TraceEvent) -> u64 {
        match self {
            StreamFilter::None => 0,
            StreamFilter::User => 1 | ((e.uid.raw() as u64) << 8),
            StreamFilter::Process => 2 | ((e.pid.raw() as u64) << 8),
            StreamFilter::Host => 3 | ((e.host.raw() as u64) << 8),
            StreamFilter::Dev => 4 | ((e.dev.raw() as u64) << 8),
            StreamFilter::Path => {
                let comps = trace.path_of(e.file).map(|p| p.components()).unwrap_or(&[]);
                let a = comps.first().copied().unwrap_or(u32::MAX) as u64;
                let b = comps.get(1).copied().unwrap_or(u32::MAX) as u64;
                5 | (a << 8) | (b << 36)
            }
        }
    }
}

/// Result of one Figure 1 measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessorStats {
    /// Which filter produced this row.
    pub filter: StreamFilter,
    /// Number of (predecessor → successor) transitions measured.
    pub transitions: u64,
    /// Fraction of transitions where the successor matched the most
    /// frequent historical successor of the predecessor — the paper's
    /// "probability of inter-file access".
    pub probability: f64,
}

/// Measure successor predictability for one filter over a trace.
///
/// The estimate is *online*: the predictor for each file is the most
/// frequent successor seen so far within the substream, matching how a
/// mining algorithm would experience the trace.
pub fn successor_probability(trace: &Trace, filter: StreamFilter) -> SuccessorStats {
    // Per-substream: last file seen.
    let mut last_in_stream: FxHashMap<u64, u32> = FxHashMap::default();
    // Per (substream-scoped predecessor): successor counts and current mode.
    struct Pred {
        counts: FxHashMap<u32, u32>,
        mode: u32,
        mode_count: u32,
    }
    let mut preds: FxHashMap<(u64, u32), Pred> = FxHashMap::default();

    let mut transitions = 0u64;
    let mut correct = 0u64;

    for e in &trace.events {
        let key = filter.key(trace, e);
        let file = e.file.raw();
        if let Some(&prev) = last_in_stream.get(&key) {
            if prev != file {
                transitions += 1;
                let p = preds.entry((key, prev)).or_insert_with(|| Pred {
                    counts: FxHashMap::default(),
                    mode: u32::MAX,
                    mode_count: 0,
                });
                if p.mode == file {
                    correct += 1;
                }
                let c = p.counts.entry(file).or_insert(0);
                *c += 1;
                if *c > p.mode_count {
                    p.mode_count = *c;
                    p.mode = file;
                }
            }
        }
        last_in_stream.insert(key, file);
    }

    SuccessorStats {
        filter,
        transitions,
        probability: if transitions == 0 {
            0.0
        } else {
            correct as f64 / transitions as f64
        },
    }
}

/// Compute Figure 1's full row set for one trace: every applicable filter.
pub fn figure1_rows(trace: &Trace) -> Vec<SuccessorStats> {
    StreamFilter::applicable(trace)
        .into_iter()
        .map(|f| successor_probability(trace, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileId, HostId, ProcId, UserId};
    use crate::trace::{FileMeta, Trace, TraceFamily};
    use crate::workload::WorkloadSpec;
    use crate::DevId;

    /// Build a toy trace: two processes each repeating their own 2-file
    /// cycle, perfectly interleaved. Per-process streams are perfectly
    /// predictable; the merged stream is not.
    fn interleaved_toy() -> Trace {
        let mut t = Trace::empty(TraceFamily::Ins);
        for _ in 0..4 {
            t.files.push(FileMeta {
                path: None,
                dev: DevId::new(0),
                size: 0,
                read_only: true,
            });
        }
        // P1: 0 1 0 1 ..., P2: 2 3 2 3 ..., interleaved in a scheduler-like
        // pseudo-random order so the *merged* stream is unpredictable even
        // though each per-process stream is a perfect cycle.
        let mut pos = [0u32; 2];
        let mut state = 0x9e3779b97f4a7c15u64;
        for seq in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let which = ((state >> 33) & 1) as usize;
            let pid = which as u32 + 1;
            let base = which as u32 * 2;
            let file = base + (pos[which] % 2);
            pos[which] += 1;
            t.events.push(TraceEvent {
                seq,
                timestamp_us: seq,
                op: crate::Op::Open,
                file: FileId::new(file),
                dev: DevId::new(0),
                uid: UserId::new(pid),
                pid: ProcId::new(pid),
                host: HostId::new(0),
                app: TraceEvent::NO_APP,
                bytes: 0,
            });
        }
        t.num_users = 3;
        t.num_hosts = 1;
        t
    }

    #[test]
    fn per_process_streams_are_more_predictable() {
        let t = interleaved_toy();
        let none = successor_probability(&t, StreamFilter::None);
        let pid = successor_probability(&t, StreamFilter::Process);
        assert!(pid.probability > none.probability);
        // The per-process cycles are perfectly predictable after warmup.
        assert!(
            pid.probability > 0.9,
            "pid predictability {}",
            pid.probability
        );
    }

    #[test]
    fn none_filter_still_counts_transitions() {
        let t = interleaved_toy();
        let s = successor_probability(&t, StreamFilter::None);
        assert!(s.transitions > 0);
        assert!(s.probability >= 0.0 && s.probability <= 1.0);
    }

    #[test]
    fn empty_trace_yields_zero() {
        let t = Trace::empty(TraceFamily::Ins);
        let s = successor_probability(&t, StreamFilter::None);
        assert_eq!(s.transitions, 0);
        assert_eq!(s.probability, 0.0);
    }

    #[test]
    fn applicable_filters_respect_path_availability() {
        let hp = WorkloadSpec::hp().scaled(0.005).generate();
        let ins = WorkloadSpec::ins().scaled(0.01).generate();
        assert!(StreamFilter::applicable(&hp).contains(&StreamFilter::Path));
        assert!(!StreamFilter::applicable(&ins).contains(&StreamFilter::Path));
        assert!(StreamFilter::applicable(&ins).contains(&StreamFilter::Dev));
    }

    #[test]
    fn figure1_shape_none_is_lowest_on_synthetic_traces() {
        // The paper's third observation: with no attribute filter the
        // probability is the lowest. Check on a small HP trace.
        let t = WorkloadSpec::hp().scaled(0.05).generate();
        let rows = figure1_rows(&t);
        let none = rows
            .iter()
            .find(|r| r.filter == StreamFilter::None)
            .unwrap();
        let best_attr = rows
            .iter()
            .filter(|r| r.filter != StreamFilter::None)
            .map(|r| r.probability)
            .fold(0.0f64, f64::max);
        assert!(
            best_attr > none.probability,
            "attribute filters should beat raw stream ({best_attr} vs {})",
            none.probability
        );
    }

    #[test]
    fn self_transitions_are_ignored() {
        // Repeated access to the same file is not an inter-file transition.
        let mut t = Trace::empty(TraceFamily::Ins);
        t.files.push(FileMeta {
            path: None,
            dev: DevId::new(0),
            size: 0,
            read_only: true,
        });
        for i in 0..10 {
            t.events.push(TraceEvent::synthetic(
                i,
                FileId::new(0),
                UserId::new(0),
                ProcId::new(1),
                HostId::new(0),
            ));
        }
        let s = successor_probability(&t, StreamFilter::None);
        assert_eq!(s.transitions, 0);
    }
}

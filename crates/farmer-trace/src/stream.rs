//! Streaming event sources: unbounded request streams for online mining.
//!
//! The FARMER paper describes mining as "an iterative process that repeats
//! itself for each incoming request" (§3.1) — a *service*, not a batch job.
//! The batch [`Trace`] model caps what the repo can exercise at whatever
//! fits in memory; this module turns finite traces into unbounded request
//! streams so the online subsystems (`farmer-stream`) can be driven with
//! millions of events under a fixed-size working set.
//!
//! * [`ReplayStream`] — cyclic replay of a finite trace with monotonically
//!   re-stamped sequence numbers and timestamps, so downstream consumers
//!   see one continuous, ever-growing request log.
//! * [`Trace::stream`] is the entry point (`trace.stream().take(5_000_000)`).

use crate::event::TraceEvent;
use crate::trace::Trace;

/// Endless cyclic replay of a finite trace.
///
/// Every lap yields the trace's events in order, with `seq` rewritten to a
/// global stream position and `timestamp_us` shifted so virtual time keeps
/// advancing across laps (lap `k` starts one mean inter-arrival gap after
/// lap `k-1` ended). All semantic attributes (file, user, process, host,
/// device, app) are preserved verbatim, which makes replay laps *mineable*:
/// correlations recur every lap exactly as the original trace exhibits
/// them.
#[derive(Debug, Clone)]
pub struct ReplayStream<'t> {
    trace: &'t Trace,
    cursor: usize,
    /// Global stream position (next event's `seq`).
    seq: u64,
    /// Virtual-time offset applied to the current lap.
    time_offset_us: u64,
    /// Gap inserted between laps (the trace's mean inter-arrival time).
    lap_gap_us: u64,
}

impl<'t> ReplayStream<'t> {
    /// A stream replaying `trace` from its beginning.
    pub fn new(trace: &'t Trace) -> Self {
        let span = trace.events.last().map(|e| e.timestamp_us).unwrap_or(0);
        let lap_gap_us = if trace.events.len() > 1 {
            (span / (trace.events.len() as u64 - 1)).max(1)
        } else {
            1
        };
        ReplayStream {
            trace,
            cursor: 0,
            seq: 0,
            time_offset_us: 0,
            lap_gap_us,
        }
    }

    /// The trace being replayed (path/namespace lookups).
    pub fn trace(&self) -> &'t Trace {
        self.trace
    }

    /// Number of full laps completed so far.
    pub fn laps(&self) -> u64 {
        if self.trace.is_empty() {
            0
        } else {
            self.seq / self.trace.len() as u64
        }
    }
}

impl Iterator for ReplayStream<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let events = &self.trace.events;
        if events.is_empty() {
            return None;
        }
        if self.cursor == events.len() {
            // Lap boundary: advance virtual time past the finished lap.
            let lap_end = events[events.len() - 1].timestamp_us;
            self.time_offset_us += lap_end + self.lap_gap_us;
            self.cursor = 0;
        }
        let mut e = events[self.cursor];
        e.seq = self.seq;
        e.timestamp_us += self.time_offset_us;
        self.cursor += 1;
        self.seq += 1;
        Some(e)
    }
}

impl Trace {
    /// An unbounded cyclic replay of this trace (see [`ReplayStream`]).
    pub fn stream(&self) -> ReplayStream<'_> {
        ReplayStream::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceFamily;
    use crate::workload::WorkloadSpec;

    #[test]
    fn empty_trace_streams_nothing() {
        let t = Trace::empty(TraceFamily::Ins);
        assert_eq!(t.stream().next(), None);
    }

    #[test]
    fn seq_is_globally_monotonic_across_laps() {
        let t = WorkloadSpec::ins().scaled(0.005).generate();
        let n = t.len();
        let seqs: Vec<u64> = t.stream().take(3 * n).map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 3 * n);
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(*s, i as u64);
        }
    }

    #[test]
    fn timestamps_never_regress() {
        let t = WorkloadSpec::hp().scaled(0.005).generate();
        let mut last = 0u64;
        for e in t.stream().take(2 * t.len() + 7) {
            assert!(e.timestamp_us >= last, "time regressed at seq {}", e.seq);
            last = e.timestamp_us;
        }
    }

    #[test]
    fn laps_preserve_semantic_attributes() {
        let t = WorkloadSpec::res().scaled(0.005).generate();
        let n = t.len();
        let two_laps: Vec<TraceEvent> = t.stream().take(2 * n).collect();
        for i in 0..n {
            let (a, b) = (&two_laps[i], &two_laps[n + i]);
            assert_eq!(a.file, b.file);
            assert_eq!(a.uid, b.uid);
            assert_eq!(a.pid, b.pid);
            assert_eq!(a.host, b.host);
            assert_eq!(a.dev, b.dev);
            assert_eq!(a.op, b.op);
            assert_eq!(a.app, b.app);
        }
        let stream = t.stream();
        let mut s = stream;
        for _ in 0..2 * n {
            s.next();
        }
        assert_eq!(s.laps(), 2);
    }

    #[test]
    fn replay_matches_source_events_on_first_lap() {
        let t = WorkloadSpec::ins().scaled(0.005).generate();
        for (orig, replayed) in t.events.iter().zip(t.stream()) {
            assert_eq!(orig, &replayed, "first lap must be the trace verbatim");
        }
    }
}

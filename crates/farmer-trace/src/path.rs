//! Normalized file-path representation.
//!
//! FARMER's semantic-attribute mining treats the file path as a first-class
//! attribute: the Divided Path Algorithm (DPA) turns every path component
//! into its own semantic-vector item, while the Integrated Path Algorithm
//! (IPA) treats the whole path as a single item whose intersection value is
//! the *fractional* component-wise similarity (paper §3.2.1, Tables 1–2).
//!
//! To make those computations cheap we store a path as a small vector of
//! interned component indices. The final component is the file name; every
//! preceding component is a directory. `/home/user1/paper/a` becomes
//! `[home, user1, paper, a]` — exactly the four "subdirectories" the paper's
//! Table 2 example counts.

use std::fmt;

use crate::ids::Interner;

/// Interner specialized for path components; a thin wrapper that exists so
/// path components and other strings don't share an index space by accident.
#[derive(Debug, Default, Clone)]
pub struct PathInterner {
    inner: Interner,
}

impl PathInterner {
    /// An empty path-component interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern one component (e.g. `"home"`).
    pub fn intern(&mut self, component: &str) -> u32 {
        self.inner.intern(component)
    }

    /// Parse a `/`-separated path string into a [`FilePath`].
    ///
    /// Empty components (leading slash, doubled slashes) are skipped, so
    /// `"/home//user1/a"` and `"home/user1/a"` normalize identically.
    pub fn parse(&mut self, path: &str) -> FilePath {
        let components = path
            .split('/')
            .filter(|c| !c.is_empty())
            .map(|c| self.intern(c))
            .collect();
        FilePath { components }
    }

    /// Render a [`FilePath`] back to a `/`-prefixed string.
    pub fn render(&self, path: &FilePath) -> String {
        let mut out = String::new();
        for &c in &path.components {
            out.push('/');
            out.push_str(self.inner.resolve(c));
        }
        if out.is_empty() {
            out.push('/');
        }
        out
    }

    /// Resolve one component index.
    pub fn resolve(&self, idx: u32) -> &str {
        self.inner.resolve(idx)
    }

    /// Number of distinct components interned.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no components have been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Approximate heap bytes (for space-overhead accounting).
    pub fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

/// A normalized absolute path: interned components, last one the file name.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct FilePath {
    components: Vec<u32>,
}

impl FilePath {
    /// Build directly from interned component indices.
    pub fn from_components(components: Vec<u32>) -> Self {
        Self { components }
    }

    /// All components, directories first, file name last.
    #[inline]
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Number of components (the paper's "count of subdirectories": the
    /// Table 2 example counts `/home/user1/paper/a` as 4).
    #[inline]
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Directory components only (everything but the file name).
    #[inline]
    pub fn dirs(&self) -> &[u32] {
        match self.components.len() {
            0 => &[],
            n => &self.components[..n - 1],
        }
    }

    /// The file-name component, if the path is non-empty.
    #[inline]
    pub fn file_name(&self) -> Option<u32> {
        self.components.last().copied()
    }

    /// Length of the longest common prefix with `other`, in components.
    pub fn common_prefix_len(&self, other: &FilePath) -> usize {
        self.components
            .iter()
            .zip(&other.components)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Component-wise intersection size counted as a multiset (order-free).
    ///
    /// The paper's Table 2 DPA example counts *matching items* between the
    /// two vectors regardless of position, with duplicates counted as many
    /// times as they pair up. Paths are short (≤ ~12 components), so an
    /// O(n·m) scan with a used-mark is faster than building hash maps.
    pub fn multiset_intersection(&self, other: &FilePath) -> usize {
        multiset_intersection(&self.components, &other.components)
    }

    /// The paper's IPA per-path similarity: `|dir components ∩| / max depth`.
    ///
    /// For `/home/user1/paper/a` vs `/home/user1/paper/b`: intersection 3
    /// (home, user1, paper), max depth 4 → 0.75, exactly Table 2.
    pub fn ipa_similarity(&self, other: &FilePath) -> f64 {
        let max = self.depth().max(other.depth());
        if max == 0 {
            return 0.0;
        }
        let inter = multiset_intersection(self.dirs(), other.dirs());
        // A full match including the file name means the same file; count it.
        let name_match =
            usize::from(self.file_name().is_some() && self.file_name() == other.file_name());
        (inter + name_match) as f64 / max as f64
    }

    /// The pair similarity term this path contributes against `other`, as
    /// `(intersection value, own items, other's items)` — the hook the
    /// miner's memoized similarity cache is built on (paths are learned
    /// once per file, so the term is a pure function of the file pair).
    ///
    /// * `integrated` (IPA): the whole path is one vector item whose
    ///   intersection value is [`FilePath::ipa_similarity`] → `(sim, 1, 1)`.
    /// * divided (DPA): every component is an item; the intersection is the
    ///   multiset overlap → `(|∩|, depth, other depth)`.
    #[inline]
    pub fn pair_term(&self, other: &FilePath, integrated: bool) -> (f64, usize, usize) {
        if integrated {
            (self.ipa_similarity(other), 1, 1)
        } else {
            (
                self.multiset_intersection(other) as f64,
                self.depth(),
                other.depth(),
            )
        }
    }

    /// Items this path contributes when the counterpart request carries no
    /// path at all (the one-sided case: the item inflates the denominator
    /// but cannot match).
    #[inline]
    pub fn solo_items(&self, integrated: bool) -> usize {
        if integrated {
            1
        } else {
            self.depth()
        }
    }

    /// Approximate heap bytes held by this path.
    pub fn heap_bytes(&self) -> usize {
        self.components.capacity() * std::mem::size_of::<u32>()
    }
}

/// Multiset intersection size of two small index slices.
pub(crate) fn multiset_intersection(a: &[u32], b: &[u32]) -> usize {
    let mut used = [false; 64];
    let mut used_vec;
    let used: &mut [bool] = if b.len() <= 64 {
        &mut used[..b.len()]
    } else {
        used_vec = vec![false; b.len()];
        &mut used_vec
    };
    let mut count = 0;
    for &x in a {
        for (i, &y) in b.iter().enumerate() {
            if !used[i] && x == y {
                used[i] = true;
                count += 1;
                break;
            }
        }
    }
    count
}

impl fmt::Debug for FilePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FilePath{:?}", self.components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(interner: &mut PathInterner, s: &str) -> FilePath {
        interner.parse(s)
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let mut i = PathInterner::new();
        let p = mk(&mut i, "/home/user1/paper/a");
        assert_eq!(p.depth(), 4);
        assert_eq!(i.render(&p), "/home/user1/paper/a");
    }

    #[test]
    fn parse_normalizes_slashes() {
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/home//user1/a");
        let b = mk(&mut i, "home/user1/a");
        assert_eq!(a, b);
    }

    #[test]
    fn dirs_and_file_name_split() {
        let mut i = PathInterner::new();
        let p = mk(&mut i, "/home/user1/paper/a");
        assert_eq!(p.dirs().len(), 3);
        assert_eq!(i.resolve(p.file_name().unwrap()), "a");
    }

    #[test]
    fn empty_path_has_no_parts() {
        let mut i = PathInterner::new();
        let p = mk(&mut i, "/");
        assert_eq!(p.depth(), 0);
        assert!(p.dirs().is_empty());
        assert!(p.file_name().is_none());
        assert_eq!(i.render(&p), "/");
    }

    #[test]
    fn common_prefix() {
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/home/user1/paper/a");
        let b = mk(&mut i, "/home/user1/code/b");
        assert_eq!(a.common_prefix_len(&b), 2);
    }

    #[test]
    fn table2_ipa_same_dir() {
        // Paper Table 2: /home/user1/paper/a vs /home/user1/paper/b -> 3/4.
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/home/user1/paper/a");
        let b = mk(&mut i, "/home/user1/paper/b");
        assert!((a.ipa_similarity(&b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn table2_ipa_cross_user() {
        // Paper Table 2: /home/user1/paper/a vs /home/user2/c -> 1/4 = 0.25.
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/home/user1/paper/a");
        let c = mk(&mut i, "/home/user2/c");
        assert!((a.ipa_similarity(&c) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ipa_identical_paths_is_one() {
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/usr/bin/gcc");
        let b = mk(&mut i, "/usr/bin/gcc");
        assert!((a.ipa_similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ipa_is_symmetric() {
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/home/user1/paper/a");
        let c = mk(&mut i, "/home/user2/c");
        assert_eq!(
            a.ipa_similarity(&c).to_bits(),
            c.ipa_similarity(&a).to_bits()
        );
    }

    #[test]
    fn multiset_intersection_counts_duplicates() {
        // [x, x, y] vs [x, x, z] -> 2 (two x pairings), not 1.
        let a = FilePath::from_components(vec![1, 1, 2]);
        let b = FilePath::from_components(vec![1, 1, 3]);
        assert_eq!(a.multiset_intersection(&b), 2);
    }

    #[test]
    fn multiset_intersection_caps_at_multiplicity() {
        // [x] vs [x, x] -> 1.
        let a = FilePath::from_components(vec![1]);
        let b = FilePath::from_components(vec![1, 1]);
        assert_eq!(a.multiset_intersection(&b), 1);
        assert_eq!(b.multiset_intersection(&a), 1);
    }

    #[test]
    fn pair_term_matches_both_algorithms() {
        let mut i = PathInterner::new();
        let a = mk(&mut i, "/home/user1/paper/a");
        let b = mk(&mut i, "/home/user2/c");
        let (ipa, na, nb) = a.pair_term(&b, true);
        assert!((ipa - a.ipa_similarity(&b)).abs() < 1e-15);
        assert_eq!((na, nb), (1, 1));
        let (dpa, da, db) = a.pair_term(&b, false);
        assert_eq!(dpa, a.multiset_intersection(&b) as f64);
        assert_eq!((da, db), (a.depth(), b.depth()));
        assert_eq!(a.solo_items(true), 1);
        assert_eq!(a.solo_items(false), 4);
    }

    #[test]
    fn multiset_intersection_large_slices() {
        // Exercise the heap-allocated fallback (> 64 components).
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (50..150).collect();
        assert_eq!(multiset_intersection(&a, &b), 50);
    }
}

//! Text serialization of traces.
//!
//! A simple line-oriented format so that (a) generated traces can be saved
//! and inspected, and (b) real traces can be converted into the model with
//! a one-line-per-event converter. Format:
//!
//! ```text
//! # farmer-trace v1
//! family HP
//! users 236
//! hosts 32
//! file <id> <dev> <size> <ro:0|1> <path|->
//! ...
//! ev <ts_us> <op> <file> <uid> <pid> <host> <app> <bytes>
//! ...
//! ```
//!
//! `path` is `-` for traces without path information (INS/RES style).
//! Event `seq` is implicit in line order.
//!
//! Parsing is strict and total: every malformed input — truncated
//! records, unknown tags, non-numeric fields, trailing garbage — returns
//! a [`ParseError`] carrying the offending 1-based line number. The
//! parser never panics on untrusted input.

use std::fmt::Write as _;

use crate::event::{Op, TraceEvent};
use crate::ids::{DevId, FileId, HostId, ProcId, UserId};
use crate::trace::{FileMeta, Trace, TraceFamily};

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize a trace to the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 40 + trace.files.len() * 40);
    out.push_str("# farmer-trace v1\n");
    let _ = writeln!(out, "family {}", trace.family.name());
    let _ = writeln!(out, "users {}", trace.num_users);
    let _ = writeln!(out, "hosts {}", trace.num_hosts);
    for (id, f) in trace.files.iter().enumerate() {
        let path = f
            .path
            .as_ref()
            .map(|p| trace.paths.render(p))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "file {id} {} {} {} {path}",
            f.dev.raw(),
            f.size,
            u8::from(f.read_only),
        );
    }
    for e in &trace.events {
        let _ = writeln!(
            out,
            "ev {} {} {} {} {} {} {} {}",
            e.timestamp_us,
            e.op.token(),
            e.file.raw(),
            e.uid.raw(),
            e.pid.raw(),
            e.host.raw(),
            e.app,
            e.bytes,
        );
    }
    out
}

/// Parse the text format back into a [`Trace`].
pub fn from_text(text: &str) -> Result<Trace, ParseError> {
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_string(),
    };
    let mut family: Option<TraceFamily> = None;
    let mut trace = Trace::empty(TraceFamily::Hp);
    let mut users = 0u32;
    let mut hosts = 0u32;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut it = l.split_ascii_whitespace();
        // `l` is non-empty after the trim above, but stay total anyway:
        // this loop runs over attacker-controlled lines.
        let Some(tag) = it.next() else { continue };
        match tag {
            "family" => {
                let name = it.next().ok_or_else(|| err(line, "missing family name"))?;
                let f =
                    TraceFamily::from_name(name).ok_or_else(|| err(line, "unknown family name"))?;
                family = Some(f);
                trace.family = f;
                trace.label = format!("{}(parsed)", f.name());
            }
            "users" => {
                users = parse_num(it.next(), line, "users")?;
            }
            "hosts" => {
                hosts = parse_num(it.next(), line, "hosts")?;
            }
            "file" => {
                let id: u32 = parse_num(it.next(), line, "file id")?;
                if id as usize != trace.files.len() {
                    return Err(err(line, "file ids must be dense and in order"));
                }
                let dev: u32 = parse_num(it.next(), line, "dev")?;
                let size: u64 = parse_num(it.next(), line, "size")?;
                let ro: u8 = parse_num(it.next(), line, "ro flag")?;
                let path_tok = it.next().ok_or_else(|| err(line, "missing path"))?;
                let path = if path_tok == "-" {
                    None
                } else {
                    Some(trace.paths.parse(path_tok))
                };
                trace.files.push(FileMeta {
                    path,
                    dev: DevId::new(dev),
                    size,
                    read_only: ro != 0,
                });
            }
            "ev" => {
                let ts: u64 = parse_num(it.next(), line, "timestamp")?;
                let op_tok = it.next().ok_or_else(|| err(line, "missing op"))?;
                let op = Op::from_token(op_tok).ok_or_else(|| err(line, "unknown op"))?;
                let file: u32 = parse_num(it.next(), line, "file")?;
                let uid: u32 = parse_num(it.next(), line, "uid")?;
                let pid: u32 = parse_num(it.next(), line, "pid")?;
                let host: u32 = parse_num(it.next(), line, "host")?;
                let app: u32 = parse_num(it.next(), line, "app")?;
                let bytes: u64 = parse_num(it.next(), line, "bytes")?;
                if file as usize >= trace.files.len() {
                    return Err(err(line, "event references unknown file"));
                }
                trace.events.push(TraceEvent {
                    seq: trace.events.len() as u64,
                    timestamp_us: ts,
                    op,
                    file: FileId::new(file),
                    dev: trace.files[file as usize].dev,
                    uid: UserId::new(uid),
                    pid: ProcId::new(pid),
                    host: HostId::new(host),
                    app,
                    bytes,
                });
            }
            _ => return Err(err(line, "unknown record tag")),
        }
        if it.next().is_some() {
            return Err(err(line, "trailing tokens after record"));
        }
    }

    if family.is_none() {
        return Err(err(0, "missing family header"));
    }
    trace.num_users = users;
    trace.num_hosts = hosts;
    trace.validate().map_err(|m| ParseError {
        line: 0,
        message: m,
    })?;
    Ok(trace)
}

fn parse_num<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    tok.ok_or_else(|| ParseError {
        line,
        message: format!("missing {what}"),
    })?
    .parse()
    .map_err(|_| ParseError {
        line,
        message: format!("invalid {what}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    #[test]
    fn roundtrip_hp_trace() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let text = to_text(&trace);
        let parsed = from_text(&text).expect("parse");
        assert_eq!(parsed.family, trace.family);
        assert_eq!(parsed.len(), trace.len());
        assert_eq!(parsed.num_files(), trace.num_files());
        assert_eq!(parsed.num_users, trace.num_users);
        for (a, b) in trace.events.iter().zip(&parsed.events) {
            assert_eq!(a.timestamp_us, b.timestamp_us);
            assert_eq!(a.op, b.op);
            assert_eq!(a.file, b.file);
            assert_eq!(a.uid, b.uid);
            assert_eq!(a.pid, b.pid);
            assert_eq!(a.host, b.host);
        }
        // Paths survive the roundtrip.
        for (a, b) in trace.files.iter().zip(&parsed.files) {
            let ra = a.path.as_ref().map(|p| trace.paths.render(p));
            let rb = b.path.as_ref().map(|p| parsed.paths.render(p));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn roundtrip_pathless_trace() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let text = to_text(&trace);
        let parsed = from_text(&text).expect("parse");
        assert!(parsed.files.iter().all(|f| f.path.is_none()));
        assert_eq!(parsed.len(), trace.len());
    }

    #[test]
    fn rejects_unknown_tag() {
        let e = from_text("family HP\nbogus 1\n").unwrap_err();
        assert!(e.message.contains("unknown record tag"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_missing_family() {
        assert!(from_text("users 3\n").is_err());
    }

    #[test]
    fn rejects_out_of_order_file_ids() {
        let e = from_text("family HP\nfile 1 0 10 1 /a/b\n").unwrap_err();
        assert!(e.message.contains("dense"));
    }

    #[test]
    fn rejects_event_with_unknown_file() {
        let text = "family HP\nfile 0 0 10 1 /a/b\nev 1 open 5 0 0 0 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("unknown file"));
    }

    #[test]
    fn rejects_bad_op() {
        let text = "family HP\nfile 0 0 10 1 /a/b\nev 1 frobnicate 0 0 0 0 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("unknown op"));
    }

    #[test]
    fn rejects_truncated_event_line() {
        let text = "family HP\nfile 0 0 10 1 /a/b\nev 1 open 0 0 0 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("missing bytes"));
    }

    #[test]
    fn rejects_non_numeric_fields_with_line_numbers() {
        // Non-numeric timestamp.
        let text = "family HP\nfile 0 0 10 1 /a/b\nev abc open 0 0 0 0 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("invalid timestamp"), "{e}");
        assert_eq!(e.line, 3);
        // Non-numeric uid.
        let text = "family HP\nfile 0 0 10 1 /a/b\nev 1 open 0 x 0 0 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("invalid uid"), "{e}");
        assert_eq!(e.line, 3);
        // Negative (hence invalid for u64) size on a file record.
        let e = from_text("family HP\nfile 0 0 -5 1 /a/b\n").unwrap_err();
        assert!(e.message.contains("invalid size"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_truncated_file_record() {
        let e = from_text("family HP\nfile 0 0 10\n").unwrap_err();
        assert!(e.message.contains("missing ro flag"), "{e}");
        assert_eq!(e.line, 2);
        let e = from_text("family HP\nfile 0 0 10 1\n").unwrap_err();
        assert!(e.message.contains("missing path"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_truncated_header_records() {
        let e = from_text("family\n").unwrap_err();
        assert!(e.message.contains("missing family name"), "{e}");
        assert_eq!(e.line, 1);
        let e = from_text("family HP\nusers\n").unwrap_err();
        assert!(e.message.contains("missing users"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = from_text("family HP extra\n").unwrap_err();
        assert!(e.message.contains("trailing tokens"), "{e}");
        assert_eq!(e.line, 1);
        let text = "family HP\nfile 0 0 10 1 /a/b\nev 1 open 0 0 0 0 0 0 99\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("trailing tokens"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_unknown_tag_mid_file_after_valid_records() {
        let text = "family HP\nfile 0 0 10 1 /a/b\nev 1 open 0 0 0 0 0 0\nxev 2 open 0 0 0 0 0 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("unknown record tag"), "{e}");
        assert_eq!(e.line, 4);
    }

    #[test]
    fn malformed_inputs_never_panic() {
        // A grab-bag of hostile shapes: every one must come back as a
        // ParseError (or a valid trace), never a panic.
        let cases = [
            "",
            "\n\n\n",
            "ev 1 open 0 0 0 0 0 0",
            "file 0 0 10 1 /a",
            "family HP\nfile 99999999999 0 10 1 /a",
            "family HP\nfile 0 99999999999999999999 10 1 /a",
            "family HP\nev 18446744073709551616 open 0 0 0 0 0 0",
            "family XX",
            "family HP\nusers -1",
            "family HP\nfile 0 0 10 2 /a\nev 1 stat 0 0 0 0 0 0",
            "family HP\nfile 0 0 10 1 //",
            "# only a comment",
        ];
        for c in cases {
            let _ = from_text(c);
        }
    }

    #[test]
    fn app_field_roundtrips() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let parsed = from_text(&to_text(&trace)).expect("parse");
        for (a, b) in trace.events.iter().zip(&parsed.events) {
            assert_eq!(a.app, b.app);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hi\n\nfamily INS\n# another\n";
        let t = from_text(text).expect("parse");
        assert_eq!(t.family, TraceFamily::Ins);
        assert!(t.is_empty());
    }
}

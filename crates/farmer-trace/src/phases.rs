//! Equal event-index phase segmentation, shared by the simulators.
//!
//! Phase-shifting scenarios are reported over `num_phases` equal
//! event-index segments so adaptation and post-shift recovery are visible
//! instead of averaged away. The segmentation rule lives here — one
//! definition for the cache simulator (`farmer-prefetch::simulate`), the
//! MDS replay (`farmer-mds::replay`) and their online variants — because
//! the naive `ceil(len / num_phases)` stride gets the *count* wrong on
//! short traces: a 5-event run asked for 4 phases strides by 2 and reports
//! only 3 segments, and the requested/actual mismatch silently corrupts
//! per-phase comparisons between cells.
//!
//! **The rule.** A run of `len` events asked to report `requested` phases
//! is cut into exactly
//!
//! ```text
//! segments = min(max(requested, 1), max(len, 1))
//! ```
//!
//! balanced segments: segment `k` covers event indices
//! `[k·len/segments, (k+1)·len/segments)` (integer division), so every
//! segment holds `⌊len/segments⌋` or `⌈len/segments⌉` events and no
//! segment is empty unless the trace itself is empty (an empty trace
//! reports one all-zero segment). When `len ≥ requested` the caller gets
//! exactly the number of phases it asked for; shorter traces degrade to
//! one phase per event rather than fabricating empty segments.

/// Number of segments a run of `len` events reports when `requested`
/// phases are asked for: `min(max(requested, 1), max(len, 1))`.
pub fn phase_count(len: usize, requested: usize) -> usize {
    requested.max(1).min(len.max(1))
}

/// Exclusive end index of segment `k` (0-based) of `segments` balanced
/// segments over `len` events.
///
/// Monotone in `k`, with `phase_end(len, s, s - 1) == len`. Callers
/// obtain `segments` from [`phase_count`]; `k < segments` is required.
///
/// # Panics
/// Panics if `segments` is zero or `k >= segments`.
pub fn phase_end(len: usize, segments: usize, k: usize) -> usize {
    assert!(segments > 0, "segments must be positive");
    assert!(k < segments, "segment index {k} out of range ({segments})");
    // u128 keeps the product exact for any realistic trace length.
    ((k as u128 + 1) * len as u128 / segments as u128) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_min_of_request_and_length() {
        assert_eq!(phase_count(100, 4), 4);
        assert_eq!(phase_count(5, 4), 4);
        assert_eq!(phase_count(2, 5), 2, "short trace: one phase per event");
        assert_eq!(phase_count(0, 5), 1, "empty trace: one zero segment");
        assert_eq!(phase_count(0, 1), 1);
        assert_eq!(phase_count(7, 0), 1, "requested=0 normalizes to 1");
    }

    #[test]
    fn segments_are_balanced_and_cover_the_run() {
        for len in [1usize, 2, 5, 7, 16, 100, 101] {
            for requested in [1usize, 2, 3, 4, 5, 8] {
                let segs = phase_count(len, requested);
                let mut start = 0usize;
                for k in 0..segs {
                    let end = phase_end(len, segs, k);
                    assert!(end > start, "empty segment {k} for len={len}");
                    let size = end - start;
                    assert!(
                        size == len / segs || size == len.div_ceil(segs),
                        "unbalanced segment {k} ({size}) for len={len} segs={segs}"
                    );
                    start = end;
                }
                assert_eq!(start, len, "segments must cover the run exactly");
            }
        }
    }

    #[test]
    fn five_events_four_phases_reports_four_segments() {
        // The ceil-stride bug: stride 2 over 5 events yields 3 segments.
        let segs = phase_count(5, 4);
        assert_eq!(segs, 4);
        let bounds: Vec<usize> = (0..segs).map(|k| phase_end(5, segs, k)).collect();
        assert_eq!(bounds, vec![1, 2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_index_must_be_in_range() {
        let _ = phase_end(10, 4, 4);
    }
}

//! Zipfian sampling over a finite index range.
//!
//! File popularity in real file-system traces is heavily skewed; the
//! synthetic workload generators use Zipf-distributed choices for which
//! application runs next and which shared files are touched. `rand` does not
//! ship a Zipf distribution, so we implement one here: an exact
//! inverse-transform sampler over a precomputed cumulative table. Building
//! the table is O(n); each sample is O(log n) via binary search — plenty fast
//! for the namespace sizes the experiments use (≤ 10⁶) and exact, which keeps
//! experiments reproducible across platforms.

use rand::Rng;

/// Exact Zipf(α) sampler over `0..n`.
///
/// `P(k) ∝ 1 / (k+1)^α`. `alpha = 0` degenerates to the uniform
/// distribution; `alpha ≈ 0.8–1.2` matches commonly reported file-popularity
/// skews.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(X ≤ k). Last entry is 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0` or `alpha` is not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over an empty range");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding leaving the last entry below 1.0.
        if let Some(c) = cdf.last_mut() {
            *c = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of outcomes.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first k with cdf[k] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of outcome `k` (for tests and diagnostics).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn samples_stay_in_range_and_skew_low() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                low += 1;
            }
        }
        // With alpha=1 over 1000 outcomes, the top-10 mass is
        // H(10)/H(1000) ≈ 2.93/7.49 ≈ 39%. Allow generous slack.
        let frac = low as f64 / N as f64;
        assert!(frac > 0.30 && frac < 0.50, "top-10 mass {frac}");
    }

    #[test]
    fn sampling_matches_pmf_for_head() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let observed = count as f64 / N as f64;
            let expected = z.pmf(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "k={k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn single_outcome_always_zero() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rejects_empty_range() {
        let _ = Zipf::new(0, 1.0);
    }
}

//! # farmer-trace — trace substrate for the FARMER reproduction
//!
//! The FARMER paper (Xia et al., TR-UNL-CSE-2008-0001 / HPDC 2008) evaluates
//! its correlation-mining model on four distributed file-system traces:
//! LLNL (parallel scientific cluster), INS (instructional HP-UX lab),
//! RES (research desktops) and HP (time-sharing server). Those traces are not
//! redistributable, so this crate provides:
//!
//! * a **trace model** ([`Trace`], [`TraceEvent`]) rich enough to carry every
//!   semantic attribute FARMER mines (user, process, host, device, path),
//! * **synthetic workload generators** ([`workload`]) that reproduce the
//!   statistics each trace family is known for — program file-set regularity,
//!   directory locality, Zipf popularity, and multi-process interleaving —
//!   with one preset per paper trace,
//! * a **text parser/serializer** ([`parser`]) so real traces can be plugged
//!   in using the same model, and
//! * **successor-probability statistics** ([`stats`]) that regenerate the
//!   paper's Figure 1.
//!
//! Everything downstream (the FARMER miner, the prefetchers, the metadata
//! server simulator) consumes traces exclusively through this crate.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod event;
pub mod hash;
pub mod ids;
pub mod parser;
pub mod path;
pub mod phases;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod workload;
pub mod zipf;

pub use event::{Op, TraceEvent};
pub use ids::{DevId, FileId, HostId, ProcId, UserId};
pub use path::{FilePath, PathInterner};
pub use stream::ReplayStream;
pub use trace::{FileMeta, Trace, TraceFamily};
pub use workload::{
    ChurnSpec, DriftSpec, MultiTenantSpec, ScanStormSpec, TraceGenerator, WorkloadSpec,
};

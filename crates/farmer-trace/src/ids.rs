//! Strongly-typed, interned identifiers.
//!
//! Every entity a trace refers to — files, users, processes, hosts, devices —
//! is identified by a dense `u32` index. Dense indices keep the downstream
//! data structures (correlation graph adjacency, cache maps, per-file tables)
//! compact and make hashing cheap. The [`Interner`] maps externally-supplied
//! names (e.g. path strings in a parsed trace) to these dense indices.

use std::fmt;

use crate::hash::FxHashMap;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index widened for use as a slice index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// A file, dense within one [`crate::Trace`].
    FileId,
    "f"
);
define_id!(
    /// A user account.
    UserId,
    "u"
);
define_id!(
    /// A process (one program run; a fresh id per run, as in real traces).
    ProcId,
    "p"
);
define_id!(
    /// A client machine.
    HostId,
    "h"
);
define_id!(
    /// A device / volume. INS and RES identify file locations by
    /// `(file id, device id)` instead of a path.
    DevId,
    "d"
);

/// Interns strings to dense `u32` indices (and back).
///
/// Used for path components when parsing textual traces and when generating
/// synthetic namespaces.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its dense index. Idempotent.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.map.get(name) {
            return idx;
        }
        let idx = self.names.len() as u32;
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, idx);
        idx
    }

    /// Look up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// Resolve a dense index back to the original string.
    pub fn resolve(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Approximate heap usage in bytes (strings + index tables), used by the
    /// Table 4 space-overhead accounting.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.names.iter().map(|s| s.len()).sum();
        // Each entry appears once in `names` and once as a map key; the map
        // additionally stores a u32 value and bucket overhead.
        strings * 2
            + self.names.len() * std::mem::size_of::<Box<str>>()
            + self.map.len() * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let f = FileId::new(42);
        assert_eq!(f.raw(), 42);
        assert_eq!(f.index(), 42);
        assert_eq!(format!("{f}"), "f42");
        assert_eq!(format!("{f:?}"), "f42");
        let u: UserId = 7.into();
        assert_eq!(u, UserId::new(7));
    }

    #[test]
    fn ids_of_different_kinds_are_distinct_types() {
        // This is a compile-time property; the test simply documents it.
        fn takes_file(_: FileId) {}
        takes_file(FileId::new(1));
    }

    #[test]
    fn interner_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("home");
        let b = i.intern("user1");
        let a2 = i.intern("home");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "home");
        assert_eq!(i.resolve(b), "user1");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        assert_eq!(i.len(), 0);
        i.intern("present");
        assert_eq!(i.get("present"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn interner_heap_accounting_grows() {
        let mut i = Interner::new();
        let before = i.heap_bytes();
        for n in 0..100 {
            i.intern(&format!("component-{n}"));
        }
        assert!(i.heap_bytes() > before);
    }

    #[test]
    fn id_ordering_follows_raw() {
        assert!(FileId::new(1) < FileId::new(2));
        let mut v = vec![FileId::new(3), FileId::new(1), FileId::new(2)];
        v.sort();
        assert_eq!(v, vec![FileId::new(1), FileId::new(2), FileId::new(3)]);
    }
}

//! A fast, non-cryptographic hasher for dense integer keys.
//!
//! The FARMER pipeline performs one hash-map probe per trace event per data
//! structure (graph adjacency, cache index, correlator table, …), so hashing
//! is on the hot path of every experiment. SipHash (std's default) is
//! needlessly expensive for trusted `u32` keys; this module implements the
//! Fx multiply-xor hash used by rustc, which the Rust performance book
//! recommends for exactly this situation. HashDoS resistance is irrelevant:
//! all keys are internally generated dense indices.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx multiply-xor hasher. Extremely fast for small integer keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` with the Fx function (useful for seeds).
#[inline]
pub fn fx_hash_u64(v: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(v);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_basic_ops() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.contains(&10));
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fx_hash_u64(12345), fx_hash_u64(12345));
        assert_ne!(fx_hash_u64(12345), fx_hash_u64(12346));
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one full chunk + 3-byte tail
        let mut b = FxHasher::default();
        b.write(b"hello worlc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_small_keys_spread() {
        // Sanity check the hash doesn't collapse small keys.
        let mut seen = FxHashSet::default();
        for k in 0u64..10_000 {
            seen.insert(fx_hash_u64(k));
        }
        assert_eq!(seen.len(), 10_000);
    }
}

//! Synthetic workload generation.
//!
//! The generators model the mechanisms that give real file-system traces
//! their structure, because those mechanisms are exactly what FARMER (and
//! the baselines it is compared against) exploit or suffer from:
//!
//! * **Program file-set regularity** — a program run touches an ordered set
//!   of files ([`AppTemplate`]); sequence-mining predictors live off this.
//! * **Semantic attribute coherence** — a run carries a stable (user,
//!   process, host) context, and its files cluster in directories; semantic
//!   mining lives off this.
//! * **Multi-process interleaving** — concurrently active runs are
//!   interleaved by the OS scheduler, which is the paper's stated reason
//!   pure sequence predictors degrade (§6: "the file access sequence will be
//!   interleaved by the scheduler of OS").
//! * **Noise** — accesses unrelated to any file-set (Zipf-popular shared
//!   files), which create spurious successor pairs.
//!
//! One [`WorkloadSpec`] preset per paper trace family dials these mechanisms
//! to reproduce that family's reported character (see module docs of
//! [`presets`]).

pub mod adversarial;
mod engine;
mod namespace;
pub mod presets;

pub use adversarial::{ChurnSpec, DriftSpec, MultiTenantSpec, ScanStormSpec};
pub use engine::TraceGenerator;
pub use namespace::{AppTemplate, Namespace};

use crate::trace::{Trace, TraceFamily};

/// Parameters of one synthetic workload. Construct via the per-family
/// presets ([`WorkloadSpec::llnl`] etc.) and tweak fields as needed.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which paper trace this models (labels + path availability).
    pub family: TraceFamily,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Number of events to emit.
    pub num_events: usize,
    /// Distinct user accounts.
    pub num_users: u32,
    /// Distinct client hosts.
    pub num_hosts: u32,
    /// Distinct devices/volumes (INS/RES identify files by (fid, dev)).
    pub num_devs: u32,
    /// Globally shared application templates (class assignments, system
    /// tools). Chosen with Zipf(`app_zipf`) popularity.
    pub global_apps: usize,
    /// Private application templates **per user** (personal projects).
    pub private_apps_per_user: usize,
    /// Probability a newly spawned process runs one of its user's private
    /// apps instead of a global one.
    pub private_app_prob: f64,
    /// Inclusive range of file-set lengths for app templates.
    pub files_per_app: (usize, usize),
    /// Number of shared tool/library files (every app's file-set starts with
    /// a tool and may link libraries).
    pub shared_files: usize,
    /// Times each app's sequence repeats within one run (LLNL timestep
    /// loops; 1 elsewhere).
    pub loops_per_run: (usize, usize),
    /// Parallel ranks per global app (LLNL): each global app is expanded
    /// into this many rank variants sharing the input prefix but owning
    /// private checkpoint files. 1 disables rank expansion.
    pub parallel_ranks: usize,
    /// Inclusive range of rank-private checkpoint files appended to each
    /// rank variant (only meaningful when `parallel_ranks > 1`). Real
    /// checkpoints are written once per timestep, so longer chains model
    /// longer-running jobs with write-once files.
    pub ckpts_per_rank: (usize, usize),
    /// Number of concurrently active processes; the interleaving factor.
    pub concurrency: usize,
    /// Probability that a scheduled step emits a Zipf-random noise access
    /// instead of the process's next file-set step.
    pub noise: f64,
    /// Probability a process skips a file-set step (imperfect regularity).
    pub skip_prob: f64,
    /// Zipf exponent for global-app popularity.
    pub app_zipf: f64,
    /// Zipf exponent for user activity (who spawns the next process).
    pub user_zipf: f64,
    /// Probability a new process runs on a random host instead of the
    /// user's primary one (users moving between lab machines / login
    /// nodes). Host mobility is what lets the host attribute discriminate
    /// between within-run pairs (same host) and stale cross-run pairs.
    pub host_hop_prob: f64,
    /// Probability a private run is *ad-hoc*: instead of replaying an app
    /// template it touches a random subset of the owner's files in random
    /// order. Ad-hoc work produces no repeatable successor structure, which
    /// is how research-desktop workloads (RES) blunt every predictor.
    pub adhoc_prob: f64,
    /// Extra project files per user beyond what private apps need — cold
    /// namespace mass that dilutes cache residency (drives base LRU hit
    /// ratios down to each trace family's reported band).
    pub extra_files_per_user: usize,
    /// Mean event inter-arrival time in microseconds.
    pub mean_interarrival_us: u64,
    /// Directory depth of private project paths (under `/home/uN/`).
    pub project_depth: usize,
}

impl WorkloadSpec {
    /// LLNL preset: parallel scientific cluster (see [`presets`]).
    pub fn llnl() -> Self {
        presets::llnl()
    }

    /// INS preset: instructional HP-UX lab (see [`presets`]).
    pub fn ins() -> Self {
        presets::ins()
    }

    /// RES preset: research desktops (see [`presets`]).
    pub fn res() -> Self {
        presets::res()
    }

    /// HP preset: time-sharing server (see [`presets`]).
    pub fn hp() -> Self {
        presets::hp()
    }

    /// The preset for a given family.
    pub fn for_family(family: TraceFamily) -> Self {
        match family {
            TraceFamily::Llnl => Self::llnl(),
            TraceFamily::Ins => Self::ins(),
            TraceFamily::Res => Self::res(),
            TraceFamily::Hp => Self::hp(),
        }
    }

    /// Scale the event count by `factor` (for quick tests or big runs),
    /// returning the modified spec.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_events = ((self.num_events as f64) * factor).max(1.0) as usize;
        self
    }

    /// Replace the seed, returning the modified spec.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the trace described by this spec.
    pub fn generate(&self) -> Trace {
        TraceGenerator::new(self.clone()).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_exist_for_all_families() {
        for family in TraceFamily::ALL {
            let spec = WorkloadSpec::for_family(family);
            assert_eq!(spec.family, family);
            assert!(spec.num_events > 0);
            assert!(spec.concurrency > 0);
        }
    }

    #[test]
    fn scaled_multiplies_events() {
        let spec = WorkloadSpec::ins();
        let half = spec.clone().scaled(0.5);
        assert_eq!(half.num_events, spec.num_events / 2);
    }

    #[test]
    fn with_seed_replaces_seed() {
        let spec = WorkloadSpec::hp().with_seed(99);
        assert_eq!(spec.seed, 99);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = WorkloadSpec::ins().scaled(0.0);
    }
}

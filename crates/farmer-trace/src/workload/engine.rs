//! The interleaving engine: turns a namespace + spec into an event stream.
//!
//! A fixed-size pool of `concurrency` process slots is kept busy. Each step
//! the engine picks one active slot uniformly at random — modelling an OS
//! scheduler interleaving concurrent processes — and emits that process's
//! next file-set access (or, with probability `noise`, an unrelated access
//! to a Zipf-popular file). When a process finishes its run it retires and a
//! fresh process spawns: a user is drawn (Zipf over users), the user's
//! primary host is selected, and an application is drawn (private with
//! probability `private_app_prob`, else global by Zipf popularity).
//!
//! The result is a stream in which true intra-run correlations are separated
//! by `concurrency`-proportional gaps — exactly the regime in which the
//! paper argues sequence-only mining degrades and semantic filtering pays.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::namespace::Namespace;
use super::WorkloadSpec;
use crate::event::{Op, TraceEvent};
use crate::ids::{FileId, HostId, ProcId, UserId};
use crate::trace::Trace;
use crate::zipf::Zipf;

/// Generates a [`Trace`] from a [`WorkloadSpec`]. See module docs.
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
}

/// One live process slot.
struct Proc {
    pid: ProcId,
    uid: UserId,
    host: HostId,
    /// Index into `Namespace::apps`; `usize::MAX` for ad-hoc runs.
    app: usize,
    /// Per-run sequence for ad-hoc runs (random files in random order);
    /// empty when replaying an app template.
    inline_seq: Vec<FileId>,
    /// Position within the sequence.
    pos: usize,
    /// Remaining loops of the sequence (≥ 1 while active).
    loops_left: usize,
    /// Whether the next emitted op should be `Open` (first touch of a file
    /// in this run) — subsequent loop touches are reads/writes.
    first_loop: bool,
    /// Length of the run's sequence, cached to avoid re-borrowing the
    /// namespace inside `advance`.
    seq_len: usize,
}

impl Proc {
    /// The file at sequence position `pos`.
    fn file_at(&self, ns: &Namespace, pos: usize) -> FileId {
        if self.inline_seq.is_empty() {
            let seq = &ns.apps[self.app].sequence;
            seq[pos.min(seq.len() - 1)]
        } else {
            self.inline_seq[pos.min(self.inline_seq.len() - 1)]
        }
    }

    /// Program identity recorded in events (`NO_APP` for ad-hoc runs).
    fn app_id(&self) -> u32 {
        if self.inline_seq.is_empty() {
            self.app as u32
        } else {
            TraceEvent::NO_APP
        }
    }
}

impl TraceGenerator {
    /// Wrap a spec.
    pub fn new(spec: WorkloadSpec) -> Self {
        TraceGenerator { spec }
    }

    /// Generate the trace. Deterministic for a given spec (seed included).
    pub fn generate(&self) -> Trace {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let ns = Namespace::build(spec, &mut rng);

        let user_zipf = Zipf::new(spec.num_users.max(1) as usize, spec.user_zipf);
        let global_zipf = Zipf::new(ns.global_end.max(1), spec.app_zipf);
        let noise_zipf = Zipf::new(ns.num_files().max(1), 1.1);

        let mut next_pid: u32 = 1;
        let mut slots: Vec<Proc> = (0..spec.concurrency)
            .map(|_| spawn(spec, &ns, &user_zipf, &global_zipf, &mut next_pid, &mut rng))
            .collect();

        let mut events = Vec::with_capacity(spec.num_events);
        let mut now_us: u64 = 0;

        while events.len() < spec.num_events {
            let slot = rng.gen_range(0..slots.len());
            now_us += rng.gen_range(1..=2 * spec.mean_interarrival_us.max(1));

            let (file, op, uid, pid, host, app) = if rng.gen_bool(spec.noise) {
                // Unrelated background access (daemons, cron, stray users):
                // a popular file touched under a context foreign to every
                // live run. pid 0 is reserved for this daemon context.
                let file = FileId::new(noise_zipf.sample(&mut rng) as u32);
                let uid = UserId::new(rng.gen_range(0..spec.num_users.max(1)));
                let host = HostId::new(rng.gen_range(0..spec.num_hosts.max(1)));
                (
                    file,
                    Op::Stat,
                    uid,
                    ProcId::new(0),
                    host,
                    TraceEvent::NO_APP,
                )
            } else {
                let p = &mut slots[slot];
                // Imperfect regularity: occasionally skip a step.
                if rng.gen_bool(spec.skip_prob) {
                    advance(p);
                }
                let file = p.file_at(&ns, p.pos);
                let op = if p.first_loop {
                    Op::Open
                } else if ns.files[file.index()].read_only {
                    Op::Read
                } else {
                    Op::Write
                };
                let (uid, pid, host, app) = (p.uid, p.pid, p.host, p.app_id());
                advance(p);
                (file, op, uid, pid, host, app)
            };

            let meta = &ns.files[file.index()];
            let bytes = match op {
                Op::Read | Op::Write => meta.size.min(65_536),
                _ => 0,
            };
            events.push(TraceEvent {
                seq: events.len() as u64,
                timestamp_us: now_us,
                op,
                file,
                dev: meta.dev,
                uid,
                pid,
                host,
                app,
                bytes,
            });

            // Retire finished runs and refill the slot.
            if slots[slot].loops_left == 0 {
                slots[slot] = spawn(spec, &ns, &user_zipf, &global_zipf, &mut next_pid, &mut rng);
            }
        }

        let trace = Trace {
            family: spec.family,
            label: format!(
                "{}(synthetic: {} events, {} users, {} hosts, c={})",
                spec.family.name(),
                spec.num_events,
                spec.num_users,
                spec.num_hosts,
                spec.concurrency
            ),
            events,
            files: if spec.family.has_paths() {
                ns.files
            } else {
                // INS/RES record no paths: strip them so downstream consumers
                // cannot accidentally use information the real trace lacks.
                ns.files
                    .into_iter()
                    .map(|mut f| {
                        f.path = None;
                        f
                    })
                    .collect()
            },
            paths: ns.paths,
            num_users: spec.num_users,
            num_hosts: spec.num_hosts,
        };
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }
}

/// Advance a process one step, decrementing loops at sequence end.
fn advance(p: &mut Proc) {
    p.pos += 1;
    if p.pos >= p.seq_len {
        p.pos = 0;
        p.loops_left = p.loops_left.saturating_sub(1);
        p.first_loop = false;
    }
}

fn spawn(
    spec: &WorkloadSpec,
    ns: &Namespace,
    user_zipf: &Zipf,
    global_zipf: &Zipf,
    next_pid: &mut u32,
    rng: &mut StdRng,
) -> Proc {
    let uid = UserId::new(user_zipf.sample(rng) as u32);
    let host = if rng.gen_bool(spec.host_hop_prob) {
        HostId::new(rng.gen_range(0..spec.num_hosts.max(1)))
    } else {
        HostId::new(uid.raw() % spec.num_hosts.max(1))
    };
    let (start, end) = ns.private_ranges[uid.index()];
    let has_private = end > start;
    let pool = &ns.user_files[uid.index()];
    let loops = rng
        .gen_range(spec.loops_per_run.0..=spec.loops_per_run.1)
        .max(1);
    let pid = ProcId::new(*next_pid);
    *next_pid += 1;

    if has_private && rng.gen_bool(spec.private_app_prob) {
        if !pool.is_empty() && rng.gen_bool(spec.adhoc_prob) {
            // Ad-hoc exploration: random files from the pool, random order,
            // fresh every run — intentionally unmineable.
            let len = rng
                .gen_range(spec.files_per_app.0..=spec.files_per_app.1)
                .min(pool.len())
                .max(1);
            let inline_seq: Vec<FileId> = (0..len)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            let seq_len = inline_seq.len();
            return Proc {
                pid,
                uid,
                host,
                app: usize::MAX,
                inline_seq,
                pos: 0,
                loops_left: 1,
                first_loop: true,
                seq_len,
            };
        }
        let app = rng.gen_range(start..end);
        return Proc {
            pid,
            uid,
            host,
            app,
            inline_seq: Vec::new(),
            pos: 0,
            loops_left: loops,
            first_loop: true,
            seq_len: ns.apps[app].sequence.len(),
        };
    }

    let app = global_zipf.sample(rng);
    Proc {
        pid,
        uid,
        host,
        app,
        inline_seq: Vec::new(),
        pos: 0,
        loops_left: loops,
        first_loop: true,
        seq_len: ns.apps[app].sequence.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashSet;

    #[test]
    fn generates_requested_event_count() {
        let trace = WorkloadSpec::ins().scaled(0.1).generate();
        assert_eq!(trace.len(), WorkloadSpec::ins().scaled(0.1).num_events);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = WorkloadSpec::res().scaled(0.05);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::res().scaled(0.05).with_seed(1).generate();
        let b = WorkloadSpec::res().scaled(0.05).with_seed(2).generate();
        assert!(a.events.iter().zip(&b.events).any(|(x, y)| x != y));
    }

    #[test]
    fn ins_res_have_no_paths_llnl_hp_do() {
        assert!(WorkloadSpec::ins()
            .scaled(0.02)
            .generate()
            .files
            .iter()
            .all(|f| f.path.is_none()));
        assert!(WorkloadSpec::res()
            .scaled(0.02)
            .generate()
            .files
            .iter()
            .all(|f| f.path.is_none()));
        assert!(WorkloadSpec::hp()
            .scaled(0.02)
            .generate()
            .files
            .iter()
            .all(|f| f.path.is_some()));
        assert!(WorkloadSpec::llnl()
            .scaled(0.01)
            .generate()
            .files
            .iter()
            .all(|f| f.path.is_some()));
    }

    #[test]
    fn pids_are_fresh_per_run() {
        let trace = WorkloadSpec::ins().scaled(0.05).generate();
        // Many distinct pids should appear (process turnover).
        let pids: FxHashSet<u32> = trace.events.iter().map(|e| e.pid.raw()).collect();
        assert!(
            pids.len() > 10,
            "expected process turnover, got {}",
            pids.len()
        );
    }

    #[test]
    fn hosts_within_bounds() {
        let spec = WorkloadSpec::hp().scaled(0.05);
        let trace = spec.generate();
        for e in &trace.events {
            assert!(e.host.raw() < spec.num_hosts);
            assert!(e.uid.raw() < spec.num_users);
        }
    }

    #[test]
    fn timestamps_strictly_increase() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        for w in trace.events.windows(2) {
            assert!(w[0].timestamp_us < w[1].timestamp_us);
        }
    }

    #[test]
    fn interleaving_breaks_adjacency() {
        // With concurrency > 1, consecutive events frequently come from
        // different processes — the property that degrades sequence mining.
        let trace = WorkloadSpec::llnl().scaled(0.02).generate();
        let switches = trace
            .events
            .windows(2)
            .filter(|w| w[0].pid != w[1].pid)
            .count();
        let frac = switches as f64 / (trace.len() - 1) as f64;
        assert!(frac > 0.5, "expected heavy interleaving, got {frac}");
    }
}

//! Adversarial and dynamic scenario generators.
//!
//! The per-family presets ([`super::presets`]) reproduce the *static*
//! character of the paper's four traces. Real deployments are harder: the
//! correlation structure itself moves. Models tuned on one stationary
//! workload silently regress on phase-shifting or consolidated streams, so
//! the evaluation reference model drives every predictor through four
//! adversarial regimes built on top of any base [`WorkloadSpec`]:
//!
//! * [`DriftSpec`] — **phase-shifting correlation drift**: the trace is cut
//!   into contiguous phases and every file id is rotated by a per-phase
//!   offset. Within a phase co-access groups are stable (mineable); at each
//!   boundary the groups translate wholesale, so every previously mined
//!   pair stops occurring and a disjoint set appears. Because the rotated
//!   ids keep their *own* paths and devices, path/dev coherence no longer
//!   aligns with co-access — adversarial for semantic filtering too.
//! * [`MultiTenantSpec`] — **multi-tenant interleave**: K independently
//!   generated namespaces (possibly different families) are round-robined
//!   through one stream, modelling consolidation of unrelated clusters
//!   behind one metadata service. Ids, users, hosts, devices, processes and
//!   app identities are offset per tenant so the merged namespace is a
//!   disjoint union, and the interleave is event-count-exact: the merged
//!   stream holds precisely the union of the tenants' events, in per-tenant
//!   order.
//! * [`ScanStormSpec`] — **scan/burst storms**: periodic sequential sweeps
//!   (backup / indexer walking the namespace in id order) and hot-set flash
//!   crowds (many users stampeding a few shared files within microseconds)
//!   are spliced into the base stream. Sweeps pollute successor windows
//!   with one-shot adjacency; crowds compress unrelated contexts into the
//!   look-ahead window.
//! * [`ChurnSpec`] — **create/delete churn**: generations of ephemeral
//!   scratch files are created, co-accessed hard enough to become genuinely
//!   correlated, then unlinked. A miner that cannot forget
//!   (`Farmer::forget_files` downstream) retains dead state
//!   and serves prefetches for files that no longer exist.
//!
//! Every generator is a pure function of its spec — equal specs (seeds
//! included) produce byte-identical traces — and every produced trace
//! passes [`Trace::validate`].

use crate::event::{Op, TraceEvent};
use crate::ids::{DevId, FileId, HostId, ProcId, UserId};
use crate::path::PathInterner;
use crate::trace::{FileMeta, Trace, TraceFamily};

use super::WorkloadSpec;

/// Re-densify sequence numbers after splicing or merging event streams.
fn renumber(events: &mut [TraceEvent]) {
    for (i, e) in events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
}

// ---------------------------------------------------------------------------
// Phase-shifting correlation drift
// ---------------------------------------------------------------------------

/// Phase-shifting drift: co-access sets rotate at phase boundaries.
///
/// See the [module docs](self) for the regime; `phases = 1` degenerates to
/// the base trace.
#[derive(Debug, Clone)]
pub struct DriftSpec {
    /// The stationary workload each phase is derived from.
    pub base: WorkloadSpec,
    /// Number of contiguous phases (≥ 1). Phase 0 is the unrotated base.
    pub phases: usize,
}

impl DriftSpec {
    /// Default: four phases over the base workload.
    pub fn new(base: WorkloadSpec) -> Self {
        DriftSpec { base, phases: 4 }
    }

    /// Builder-style phase-count override.
    #[must_use]
    pub fn with_phases(mut self, phases: usize) -> Self {
        assert!(phases >= 1, "phases must be >= 1");
        self.phases = phases;
        self
    }

    /// Events per phase for a trace of `len` events.
    pub fn phase_len(&self, len: usize) -> usize {
        len.div_ceil(self.phases.max(1)).max(1)
    }

    /// Generate the drifting trace.
    pub fn generate(&self) -> Trace {
        let mut trace = self.base.generate();
        let n = trace.num_files() as u32;
        let phases = self.phases.max(1) as u32;
        if phases == 1 || n == 0 {
            return trace;
        }
        let seg = self.phase_len(trace.len());
        // Rotation stride: phases spread evenly over the namespace, so no
        // two phases share a translation and every boundary is a full break.
        let stride = (n / phases).max(1);
        let files = &trace.files;
        for (i, e) in trace.events.iter_mut().enumerate() {
            let phase = (i / seg) as u32;
            let f = FileId::new((e.file.raw() + phase * stride) % n);
            e.file = f;
            // Keep the event's device consistent with the file it now
            // targets; the semantic miner conditions on (file, dev) pairs.
            e.dev = files[f.index()].dev;
        }
        trace.label = format!("DRIFT[{}ph]({})", phases, trace.label);
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant interleave
// ---------------------------------------------------------------------------

/// K independent namespaces round-robined through one stream.
#[derive(Debug, Clone)]
pub struct MultiTenantSpec {
    /// One workload per tenant. Families may differ; if any tenant's family
    /// records no paths the merged trace is pathless (you cannot serve path
    /// semantics you only hold for part of the namespace).
    pub tenants: Vec<WorkloadSpec>,
}

impl MultiTenantSpec {
    /// K tenants running the same workload shape with decorrelated seeds.
    pub fn homogeneous(base: WorkloadSpec, k: usize) -> Self {
        assert!(k >= 1, "need at least one tenant");
        let tenants = (0..k)
            .map(|t| {
                let seed = base
                    .seed
                    .wrapping_add((t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                base.clone().with_seed(seed)
            })
            .collect();
        MultiTenantSpec { tenants }
    }

    /// Generate each tenant's standalone trace (the "parts" the interleave
    /// is event-count-exact against).
    pub fn parts(&self) -> Vec<Trace> {
        self.tenants.iter().map(WorkloadSpec::generate).collect()
    }

    /// Generate the merged trace.
    pub fn generate(&self) -> Trace {
        Self::interleave(&self.parts())
    }

    /// Round-robin `parts` into one stream over a disjoint-union namespace.
    ///
    /// Tenant `t` keeps its internal event order; the merged stream takes
    /// one event per live tenant per round, so the event count is exactly
    /// the sum of the parts and the per-tenant subsequences are unchanged.
    pub fn interleave(parts: &[Trace]) -> Trace {
        assert!(!parts.is_empty(), "need at least one tenant");
        let k = parts.len();
        let all_paths = parts.iter().all(|p| p.family.has_paths());
        // A pathless tenant forces a pathless merged trace; label it with
        // the first pathless family so downstream config selection
        // (pathless attribute combos) keys off `family.has_paths()`.
        let family = if all_paths {
            parts[0].family
        } else {
            parts
                .iter()
                .map(|p| p.family)
                .find(|f| !f.has_paths())
                .unwrap_or(TraceFamily::Res)
        };

        // Per-tenant attribute offsets: the merged namespace is a disjoint
        // union along every identity axis.
        let mut paths = PathInterner::new();
        let mut files: Vec<FileMeta> = Vec::with_capacity(parts.iter().map(Trace::num_files).sum());
        let mut file_off = Vec::with_capacity(k);
        let mut user_off = Vec::with_capacity(k);
        let mut host_off = Vec::with_capacity(k);
        let mut dev_off = Vec::with_capacity(k);
        let mut pid_off = Vec::with_capacity(k);
        let mut app_off = Vec::with_capacity(k);
        let (mut users, mut hosts, mut devs, mut pids, mut apps) = (0u32, 0u32, 0u32, 0u32, 0u32);
        for (t, part) in parts.iter().enumerate() {
            file_off.push(files.len() as u32);
            user_off.push(users);
            host_off.push(hosts);
            dev_off.push(devs);
            pid_off.push(pids);
            app_off.push(apps);
            users += part.num_users;
            hosts += part.num_hosts;
            devs += part
                .files
                .iter()
                .map(|f| f.dev.raw() + 1)
                .max()
                .unwrap_or(1);
            pids += part
                .events
                .iter()
                .map(|e| e.pid.raw() + 1)
                .max()
                .unwrap_or(1);
            apps += part
                .events
                .iter()
                .filter(|e| e.app != TraceEvent::NO_APP)
                .map(|e| e.app + 1)
                .max()
                .unwrap_or(0);
            for meta in &part.files {
                let path = if all_paths {
                    meta.path
                        .as_ref()
                        .map(|p| paths.parse(&format!("/tenant-{t}{}", part.paths.render(p))))
                } else {
                    None
                };
                files.push(FileMeta {
                    path,
                    dev: DevId::new(meta.dev.raw() + dev_off[t]),
                    size: meta.size,
                    read_only: meta.read_only,
                });
            }
        }

        // Round-robin merge. Virtual time advances by each event's
        // tenant-local inter-arrival gap, so the merged stream offers the
        // *average* tenant load over a K×-longer horizon. The adversarial
        // axis of this scenario is namespace/interleave pressure on the
        // miner and the caches (both event-count driven), not raw offered
        // load — keeping arrival rates in each family's calibrated regime
        // means the downstream queueing simulation measures prediction
        // quality, not a provisioning decision this crate cannot model.
        let total: usize = parts.iter().map(Trace::len).sum();
        let mut events = Vec::with_capacity(total);
        let mut cursor = vec![0usize; k];
        let mut last_ts = vec![0u64; k];
        let mut now = 0u64;
        while events.len() < total {
            for t in 0..k {
                let part = &parts[t];
                if cursor[t] >= part.len() {
                    continue;
                }
                let src = part.events[cursor[t]];
                cursor[t] += 1;
                let gap = src.timestamp_us.saturating_sub(last_ts[t]);
                last_ts[t] = src.timestamp_us;
                now += gap.max(1);
                events.push(TraceEvent {
                    seq: events.len() as u64,
                    timestamp_us: now,
                    op: src.op,
                    file: FileId::new(src.file.raw() + file_off[t]),
                    dev: DevId::new(src.dev.raw() + dev_off[t]),
                    uid: UserId::new(src.uid.raw() + user_off[t]),
                    pid: ProcId::new(src.pid.raw() + pid_off[t]),
                    host: HostId::new(src.host.raw() + host_off[t]),
                    app: if src.app == TraceEvent::NO_APP {
                        TraceEvent::NO_APP
                    } else {
                        src.app + app_off[t]
                    },
                    bytes: src.bytes,
                });
            }
        }

        let trace = Trace {
            family,
            label: format!(
                "TENANTSx{k}({})",
                parts
                    .iter()
                    .map(|p| p.family.name())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            events,
            files,
            paths,
            num_users: users,
            num_hosts: hosts,
        };
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }
}

// ---------------------------------------------------------------------------
// Scan/burst storms
// ---------------------------------------------------------------------------

/// Sequential sweeps plus hot-set flash crowds spliced into a base stream.
#[derive(Debug, Clone)]
pub struct ScanStormSpec {
    /// The workload the storms disturb.
    pub base: WorkloadSpec,
    /// Number of sequential sweeps over the trace (evenly spaced).
    pub sweeps: usize,
    /// Files touched per sweep, in consecutive-id order.
    pub scan_len: usize,
    /// Number of flash crowds over the trace (evenly spaced).
    pub crowds: usize,
    /// Accesses per flash crowd.
    pub burst_len: usize,
    /// Distinct files a crowd hammers (the lowest ids: the shared tools,
    /// which are genuinely the most popular files in every preset).
    pub hot_set: usize,
    /// Microseconds between injected events. Sweeps and crowds arrive far
    /// faster than the base workload's inter-arrival time but still at a
    /// physical request rate (a 1 ms gap is 1 000 req/s from one
    /// scanner/stampede — a throttled backup walker or a real flash
    /// crowd, disruptive without collapsing the queueing simulation into
    /// pure overload).
    pub inject_gap_us: u64,
}

impl ScanStormSpec {
    /// Default storm intensity: twelve sweeps of 400 files and ten crowds
    /// of 300 accesses over a dozen hot files, injected at 1 ms spacing.
    pub fn new(base: WorkloadSpec) -> Self {
        ScanStormSpec {
            base,
            sweeps: 12,
            scan_len: 400,
            crowds: 10,
            burst_len: 300,
            hot_set: 12,
            inject_gap_us: 1_000,
        }
    }

    /// Generate the stormy trace.
    pub fn generate(&self) -> Trace {
        let mut trace = self.base.generate();
        let n = trace.num_files();
        if n == 0 || trace.is_empty() {
            return trace;
        }
        let base_len = trace.len();
        let scan_gap = (base_len / (self.sweeps + 1).max(1)).max(1);
        let crowd_gap = (base_len / (self.crowds + 1).max(1)).max(1);
        let hot = self.hot_set.clamp(1, n);
        let injected = self.sweeps * self.scan_len.min(n) + self.crowds * self.burst_len;
        let mut out: Vec<TraceEvent> = Vec::with_capacity(base_len + injected);
        let mut now = 0u64;
        let mut scan_origin = 0usize;
        // Crowd processes get ids far above the generator's (which start at
        // 1 and grow by turnover); collisions would merely alias attributes
        // but fresh ids keep the stampede semantically distinct.
        const CROWD_PID_BASE: u32 = 0x4000_0000;
        let mut crowd_no = 0u32;
        let mut sweeps_done = 0usize;
        // Injected events occupy real virtual time, so the base stream is
        // shifted by the accumulated injection duration — without this,
        // every event behind a burst would collapse onto one instant and
        // the storm would measure a timestamp artifact, not a storm.
        let mut shift = 0u64;

        for (i, e) in trace.events.iter().enumerate() {
            if i > 0 && i % scan_gap == 0 && sweeps_done < self.sweeps {
                sweeps_done += 1;
                // One sweep: a daemon (pid 0, like the generator's noise
                // context) stats `scan_len` consecutive files.
                for j in 0..self.scan_len.min(n) {
                    let f = FileId::new(((scan_origin + j) % n) as u32);
                    now += self.inject_gap_us.max(1);
                    out.push(TraceEvent {
                        seq: 0,
                        timestamp_us: now,
                        op: Op::Stat,
                        file: f,
                        dev: trace.files[f.index()].dev,
                        uid: UserId::new(0),
                        pid: ProcId::new(0),
                        host: HostId::new(0),
                        app: TraceEvent::NO_APP,
                        bytes: 0,
                    });
                }
                scan_origin = (scan_origin + self.scan_len) % n;
                shift += self.scan_len.min(n) as u64 * self.inject_gap_us.max(1);
            }
            if i > 0 && i % crowd_gap == 0 && (crowd_no as usize) < self.crowds {
                // One flash crowd: many users/hosts open the same few hot
                // files within microseconds.
                for j in 0..self.burst_len {
                    let f = FileId::new((j % hot) as u32);
                    now += self.inject_gap_us.max(1);
                    out.push(TraceEvent {
                        seq: 0,
                        timestamp_us: now,
                        op: Op::Open,
                        file: f,
                        dev: trace.files[f.index()].dev,
                        uid: UserId::new(j as u32 % trace.num_users.max(1)),
                        pid: ProcId::new(CROWD_PID_BASE + crowd_no * 4096 + j as u32),
                        host: HostId::new(j as u32 % trace.num_hosts.max(1)),
                        app: TraceEvent::NO_APP,
                        bytes: 0,
                    });
                }
                crowd_no += 1;
                shift += self.burst_len as u64 * self.inject_gap_us.max(1);
            }
            let mut e = *e;
            e.timestamp_us = (e.timestamp_us + shift).max(now);
            now = e.timestamp_us;
            out.push(e);
        }
        renumber(&mut out);
        trace.events = out;
        trace.label = format!(
            "STORM[{}sw/{}cr]({})",
            self.sweeps, self.crowds, trace.label
        );
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }
}

// ---------------------------------------------------------------------------
// Create/delete churn
// ---------------------------------------------------------------------------

/// Generations of ephemeral files: created, co-accessed, then unlinked.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// The workload the churn rides on.
    pub base: WorkloadSpec,
    /// Number of scratch-file generations over the trace. Generation `g`
    /// is created at base position `g·span` and unlinked one span later
    /// (`span = base_len / generations`), so at most one generation is
    /// live at a time and turnover is continuous.
    pub generations: usize,
    /// Ephemeral files per generation.
    pub files_per_gen: usize,
    /// Co-access laps per generation lifetime: each lap touches the whole
    /// generation in order, making the cohort genuinely correlated before
    /// it dies.
    pub touches: usize,
}

impl ChurnSpec {
    /// Default churn: 16 generations of 8 scratch files, 6 laps each.
    pub fn new(base: WorkloadSpec) -> Self {
        ChurnSpec {
            base,
            generations: 16,
            files_per_gen: 8,
            touches: 6,
        }
    }

    /// File id of ephemeral file `j` of generation `g`, given the base
    /// namespace size.
    pub fn ephemeral_id(&self, base_files: usize, g: usize, j: usize) -> FileId {
        FileId::new((base_files + g * self.files_per_gen + j) as u32)
    }

    /// Generate the churning trace.
    pub fn generate(&self) -> Trace {
        let mut trace = self.base.generate();
        if trace.is_empty() || self.generations == 0 || self.files_per_gen == 0 {
            return trace;
        }
        let base_files = trace.num_files();
        let has_paths = trace.family.has_paths();
        for g in 0..self.generations {
            for j in 0..self.files_per_gen {
                let path =
                    has_paths.then(|| trace.paths.parse(&format!("/scratch/gen-{g}/tmp-{j}")));
                trace.files.push(FileMeta {
                    path,
                    dev: DevId::new(0),
                    size: 65_536,
                    read_only: false,
                });
            }
        }

        let base_len = trace.len();
        let span = (base_len / self.generations).max(1);
        let lap_gap = (span / (self.touches + 1).max(1)).max(1);
        // One process per generation: a scratch job with a stable identity,
        // owned by a rotating user on a rotating host.
        const CHURN_PID_BASE: u32 = 0x2000_0000;
        let injected = self.generations * self.files_per_gen * (2 + self.touches);
        let mut out: Vec<TraceEvent> = Vec::with_capacity(base_len + injected);
        let mut now = 0u64;

        let emit = |now: &mut u64,
                    out: &mut Vec<TraceEvent>,
                    g: usize,
                    j: usize,
                    op: Op,
                    files: &[FileMeta],
                    base_files: usize| {
            let f = self.ephemeral_id(base_files, g, j);
            *now += 1;
            out.push(TraceEvent {
                seq: 0,
                timestamp_us: *now,
                op,
                file: f,
                dev: files[f.index()].dev,
                uid: UserId::new(g as u32 % self.base.num_users.max(1)),
                pid: ProcId::new(CHURN_PID_BASE + g as u32),
                host: HostId::new(g as u32 % self.base.num_hosts.max(1)),
                app: TraceEvent::NO_APP,
                bytes: if op == Op::Write { 65_536 } else { 0 },
            });
        };

        for (i, e) in trace.events.iter().enumerate() {
            if i % span == 0 {
                let g = i / span;
                if g < self.generations {
                    // Death of the previous generation, birth of the next.
                    if g > 0 {
                        for j in 0..self.files_per_gen {
                            emit(
                                &mut now,
                                &mut out,
                                g - 1,
                                j,
                                Op::Unlink,
                                &trace.files,
                                base_files,
                            );
                        }
                    }
                    for j in 0..self.files_per_gen {
                        emit(
                            &mut now,
                            &mut out,
                            g,
                            j,
                            Op::Create,
                            &trace.files,
                            base_files,
                        );
                    }
                }
            }
            let g = (i / span).min(self.generations - 1);
            if (i % span).is_multiple_of(lap_gap) && i % span != 0 && i / span < self.generations {
                // One co-access lap over the live generation.
                for j in 0..self.files_per_gen {
                    let op = if j % 2 == 0 { Op::Write } else { Op::Open };
                    emit(&mut now, &mut out, g, j, op, &trace.files, base_files);
                }
            }
            let mut e = *e;
            e.timestamp_us = e.timestamp_us.max(now);
            now = e.timestamp_us;
            out.push(e);
        }
        // The final generation dies at end of trace.
        for j in 0..self.files_per_gen {
            emit(
                &mut now,
                &mut out,
                self.generations - 1,
                j,
                Op::Unlink,
                &trace.files,
                base_files,
            );
        }
        renumber(&mut out);
        trace.events = out;
        trace.label = format!(
            "CHURN[{}g x {}f]({})",
            self.generations, self.files_per_gen, trace.label
        );
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashSet;

    fn base() -> WorkloadSpec {
        WorkloadSpec::hp().scaled(0.05)
    }

    #[test]
    fn drift_rotates_coaccess_sets_per_phase() {
        let spec = DriftSpec::new(base()).with_phases(4);
        let plain = base().generate();
        let drift = spec.generate();
        assert_eq!(plain.len(), drift.len(), "drift adds no events");
        assert!(drift.validate().is_ok());
        let seg = spec.phase_len(drift.len());
        // Phase 0 is the unrotated base.
        for (a, b) in plain.events.iter().zip(&drift.events).take(seg) {
            assert_eq!(a.file, b.file);
        }
        // Later phases translate ids by a constant per phase.
        let n = drift.num_files() as u32;
        let stride = (n / 4).max(1);
        for (i, (a, b)) in plain.events.iter().zip(&drift.events).enumerate() {
            let phase = (i / seg) as u32;
            assert_eq!(b.file.raw(), (a.file.raw() + phase * stride) % n);
        }
    }

    #[test]
    fn drift_single_phase_is_identity() {
        let spec = DriftSpec::new(base()).with_phases(1);
        let plain = base().generate();
        let drift = spec.generate();
        assert_eq!(plain.events, drift.events);
    }

    #[test]
    fn multi_tenant_is_event_count_exact() {
        let spec = MultiTenantSpec::homogeneous(WorkloadSpec::ins().scaled(0.05), 3);
        let parts = spec.parts();
        let merged = MultiTenantSpec::interleave(&parts);
        assert_eq!(
            merged.len(),
            parts.iter().map(Trace::len).sum::<usize>(),
            "interleave must preserve every tenant event"
        );
        assert!(merged.validate().is_ok());
        assert_eq!(
            merged.num_files(),
            parts.iter().map(Trace::num_files).sum::<usize>()
        );
        assert_eq!(
            merged.num_users,
            parts.iter().map(|p| p.num_users).sum::<u32>()
        );
    }

    #[test]
    fn multi_tenant_namespaces_are_disjoint() {
        let spec = MultiTenantSpec::homogeneous(WorkloadSpec::ins().scaled(0.03), 3);
        let parts = spec.parts();
        let merged = MultiTenantSpec::interleave(&parts);
        // Per-tenant file-id ranges must not overlap: every merged event's
        // file falls in its tenant's half-open range, in tenant order.
        let mut off = 0u32;
        let mut ranges = Vec::new();
        for p in &parts {
            ranges.push(off..off + p.num_files() as u32);
            off += p.num_files() as u32;
        }
        let mut seen_per_range = vec![0usize; ranges.len()];
        for e in &merged.events {
            let t = ranges
                .iter()
                .position(|r| r.contains(&e.file.raw()))
                .expect("event outside all tenant ranges");
            seen_per_range[t] += 1;
        }
        for (t, &count) in seen_per_range.iter().enumerate() {
            assert_eq!(count, parts[t].len(), "tenant {t} lost events");
        }
    }

    #[test]
    fn multi_tenant_mixed_families_strip_paths() {
        let spec = MultiTenantSpec {
            tenants: vec![
                WorkloadSpec::hp().scaled(0.02),
                WorkloadSpec::ins().scaled(0.05),
            ],
        };
        let merged = spec.generate();
        assert!(!merged.family.has_paths());
        assert!(merged.files.iter().all(|f| f.path.is_none()));
        assert!(merged.validate().is_ok());
    }

    #[test]
    fn multi_tenant_all_paths_kept_and_prefixed() {
        let spec = MultiTenantSpec::homogeneous(WorkloadSpec::hp().scaled(0.02), 2);
        let merged = spec.generate();
        assert!(merged.family.has_paths());
        for f in &merged.files {
            let rendered = merged.paths.render(f.path.as_ref().expect("path kept"));
            assert!(
                rendered.starts_with("/tenant-"),
                "path not tenant-prefixed: {rendered}"
            );
        }
    }

    #[test]
    fn storm_injects_sweeps_and_crowds() {
        let spec = ScanStormSpec::new(base());
        let plain = base().generate();
        let storm = spec.generate();
        assert!(storm.validate().is_ok());
        assert!(
            storm.len() > plain.len(),
            "storm must add events: {} vs {}",
            storm.len(),
            plain.len()
        );
        // Sweeps: runs of consecutive-id Stat accesses from the daemon.
        let stats = storm
            .events
            .iter()
            .filter(|e| e.op == Op::Stat && e.pid.raw() == 0)
            .count();
        assert!(stats >= spec.sweeps * spec.scan_len.min(storm.num_files()) / 2);
        // Crowds: hot-set opens from many distinct hosts.
        let hot_openers: FxHashSet<u32> = storm
            .events
            .iter()
            .filter(|e| e.op == Op::Open && e.file.raw() < spec.hot_set as u32)
            .map(|e| e.host.raw())
            .collect();
        assert!(hot_openers.len() > 4, "crowd must span many hosts");
    }

    #[test]
    fn churn_creates_touches_then_unlinks_every_generation() {
        let spec = ChurnSpec::new(base());
        let churn = spec.generate();
        assert!(churn.validate().is_ok());
        let base_files = base().generate().num_files();
        for g in 0..spec.generations {
            for j in 0..spec.files_per_gen {
                let f = spec.ephemeral_id(base_files, g, j);
                let ops: Vec<Op> = churn
                    .events
                    .iter()
                    .filter(|e| e.file == f)
                    .map(|e| e.op)
                    .collect();
                assert_eq!(ops.first(), Some(&Op::Create), "gen {g} file {j}");
                assert_eq!(ops.last(), Some(&Op::Unlink), "gen {g} file {j}");
                assert!(
                    ops.len() > 2,
                    "gen {g} file {j} must be touched between birth and death"
                );
                // Exactly one create and one unlink per ephemeral file.
                assert_eq!(ops.iter().filter(|&&o| o == Op::Create).count(), 1);
                assert_eq!(ops.iter().filter(|&&o| o == Op::Unlink).count(), 1);
            }
        }
    }

    #[test]
    fn generators_are_deterministic_for_equal_specs() {
        let d1 = DriftSpec::new(base()).generate();
        let d2 = DriftSpec::new(base()).generate();
        assert_eq!(d1.events, d2.events);
        let m1 = MultiTenantSpec::homogeneous(base(), 2).generate();
        let m2 = MultiTenantSpec::homogeneous(base(), 2).generate();
        assert_eq!(m1.events, m2.events);
        let s1 = ScanStormSpec::new(base()).generate();
        let s2 = ScanStormSpec::new(base()).generate();
        assert_eq!(s1.events, s2.events);
        let c1 = ChurnSpec::new(base()).generate();
        let c2 = ChurnSpec::new(base()).generate();
        assert_eq!(c1.events, c2.events);
    }
}

//! Per-family workload presets.
//!
//! Each preset dials the generator to the character the paper (and the
//! underlying trace studies) report for that trace:
//!
//! | family | users | hosts | regularity | interleaving | paths |
//! |--------|-------|-------|------------|--------------|-------|
//! | LLNL   | few   | many nodes | looping parallel ranks | extreme | yes |
//! | INS    | class accounts | 20 | very high (shared assignments) | low | no |
//! | RES    | ~40 staff/grads | 13 | low (diverse private work) | medium | no |
//! | HP     | 236   | time-sharing clients | medium | medium | yes |
//!
//! Event counts are scaled down from the originals (46.5 M events for LLNL)
//! so the full experiment suite runs in minutes; the *relative* order of
//! trace sizes is preserved because the Table 4 space-overhead experiment
//! depends on it. Use [`super::WorkloadSpec::scaled`] for larger runs.

use super::WorkloadSpec;
use crate::trace::TraceFamily;

/// LLNL: >800-node Linux cluster running parallel scientific jobs.
/// Modelled as a modest number of job templates × many parallel ranks, each
/// rank looping over shared inputs plus private checkpoint files. Extreme
/// interleaving, tiny user population, huge file count.
pub fn llnl() -> WorkloadSpec {
    WorkloadSpec {
        family: TraceFamily::Llnl,
        seed: 0x11a1,
        num_events: 300_000,
        num_users: 8,
        num_hosts: 64,
        num_devs: 8,
        global_apps: 64,
        private_apps_per_user: 2,
        private_app_prob: 0.05,
        files_per_app: (6, 12),
        shared_files: 64,
        loops_per_run: (1, 1),
        parallel_ranks: 32,
        ckpts_per_rank: (6, 10),
        concurrency: 48,
        noise: 0.06,
        skip_prob: 0.03,
        app_zipf: 0.6,
        user_zipf: 0.7,
        host_hop_prob: 1.0,
        adhoc_prob: 0.0,
        extra_files_per_user: 64,
        mean_interarrival_us: 120,
        project_depth: 3,
    }
}

/// INS: twenty HP-UX machines in undergraduate instructional labs. Many
/// students run the *same* small set of assignment workflows, so the
/// working set is small and regularity is very high — the paper's Table 5
/// hit ratios for INS sit in the 86–94 % band.
pub fn ins() -> WorkloadSpec {
    WorkloadSpec {
        family: TraceFamily::Ins,
        seed: 0x1257,
        num_events: 60_000,
        num_users: 48,
        num_hosts: 20,
        num_devs: 4,
        global_apps: 16,
        private_apps_per_user: 1,
        private_app_prob: 0.2,
        files_per_app: (5, 10),
        shared_files: 40,
        loops_per_run: (1, 2),
        parallel_ranks: 1,
        ckpts_per_rank: (2, 4),
        concurrency: 16,
        noise: 0.06,
        skip_prob: 0.02,
        app_zipf: 1.1,
        user_zipf: 0.5,
        host_hop_prob: 0.35,
        adhoc_prob: 0.05,
        extra_files_per_user: 24,
        mean_interarrival_us: 2_000,
        project_depth: 2,
    }
}

/// RES: thirteen research desktops (grad students, faculty, staff). Work is
/// dominated by diverse private projects with little cross-user sharing, so
/// regularity is low — paper hit ratios 35–44 %.
pub fn res() -> WorkloadSpec {
    WorkloadSpec {
        family: TraceFamily::Res,
        seed: 0x4e5,
        num_events: 90_000,
        num_users: 40,
        num_hosts: 13,
        num_devs: 6,
        global_apps: 20,
        private_apps_per_user: 12,
        private_app_prob: 0.8,
        files_per_app: (4, 12),
        shared_files: 48,
        loops_per_run: (1, 1),
        parallel_ranks: 1,
        ckpts_per_rank: (2, 4),
        concurrency: 14,
        noise: 0.12,
        skip_prob: 0.16,
        app_zipf: 0.6,
        user_zipf: 0.4,
        host_hop_prob: 0.25,
        adhoc_prob: 0.62,
        extra_files_per_user: 96,
        mean_interarrival_us: 1_500,
        project_depth: 3,
    }
}

/// HP: a 10-day trace of a time-sharing server with 236 users and full path
/// information — the trace where FARMER's path attribute shines (§5.3).
/// Medium regularity, many users, deep home-directory trees.
pub fn hp() -> WorkloadSpec {
    WorkloadSpec {
        family: TraceFamily::Hp,
        seed: 0x4890,
        num_events: 200_000,
        num_users: 236,
        num_hosts: 32,
        num_devs: 8,
        global_apps: 40,
        private_apps_per_user: 3,
        private_app_prob: 0.65,
        files_per_app: (4, 10),
        shared_files: 80,
        loops_per_run: (1, 2),
        parallel_ranks: 1,
        ckpts_per_rank: (2, 4),
        concurrency: 16,
        noise: 0.07,
        skip_prob: 0.05,
        app_zipf: 0.7,
        user_zipf: 0.7,
        host_hop_prob: 0.5,
        adhoc_prob: 0.15,
        extra_files_per_user: 32,
        mean_interarrival_us: 800,
        project_depth: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llnl_is_largest_ins_smallest() {
        // Table 4's space-overhead ordering depends on trace scale order:
        // LLNL >> HP > RES > INS.
        assert!(llnl().num_events > hp().num_events);
        assert!(hp().num_events > res().num_events);
        assert!(res().num_events > ins().num_events);
    }

    #[test]
    fn host_counts_match_paper() {
        assert_eq!(ins().num_hosts, 20);
        assert_eq!(res().num_hosts, 13);
        assert_eq!(hp().num_users, 236);
    }

    #[test]
    fn llnl_has_parallel_ranks_and_heavy_concurrency() {
        let spec = llnl();
        assert!(spec.parallel_ranks >= 16);
        assert!(spec.concurrency > hp().concurrency);
    }

    #[test]
    fn ins_is_most_regular() {
        // INS should have the lowest noise/skip and the strongest app skew.
        let (i, r) = (ins(), res());
        assert!(i.noise <= r.noise);
        assert!(i.skip_prob <= r.skip_prob);
        assert!(i.app_zipf > r.app_zipf);
    }
}

//! Namespace construction: files, directories and application templates.
//!
//! The namespace is built once per generated trace:
//!
//! * a **shared area** (`/usr/bin/tool-i`, `/usr/lib/lib-j`) holding the
//!   `shared_files` every application links against,
//! * a **per-user area** (`/home/u{uid}/proj-k/...`) holding each user's
//!   private project files at the spec's `project_depth`, and
//! * **application templates**: ordered file-sets that process runs replay.
//!   Global apps draw on shared project dirs; private apps on the owner's
//!   project dirs. For LLNL, each global app is expanded into
//!   `parallel_ranks` rank variants that share the app's input prefix but
//!   append rank-private checkpoint files — reproducing the "many ranks
//!   hammer a shared input then write their own checkpoints" pattern.

use rand::rngs::StdRng;
use rand::Rng;

use super::WorkloadSpec;
use crate::ids::{DevId, FileId, UserId};
use crate::path::PathInterner;
use crate::trace::FileMeta;

/// An ordered application file-set; one process run replays `sequence`
/// (possibly several loops), which is what creates mineable correlations.
#[derive(Debug, Clone)]
pub struct AppTemplate {
    /// Owning user for private apps; `None` for global apps.
    pub owner: Option<UserId>,
    /// Ordered files the app touches per loop.
    pub sequence: Vec<FileId>,
    /// Inclusive range of loop counts per run.
    pub loops: (usize, usize),
}

/// A constructed namespace: the file table plus app templates.
#[derive(Debug)]
pub struct Namespace {
    /// Per-file metadata, indexed by `FileId`.
    pub files: Vec<FileMeta>,
    /// Path-component interner backing `files[..].path`.
    pub paths: PathInterner,
    /// Global application templates (indices into `apps` 0..global_end).
    pub apps: Vec<AppTemplate>,
    /// Index of the first private app in `apps`.
    pub global_end: usize,
    /// For each user, the half-open range of their private apps in `apps`.
    pub private_ranges: Vec<(usize, usize)>,
    /// Each user's full project-file pool (used by ad-hoc runs).
    pub user_files: Vec<Vec<FileId>>,
}

impl Namespace {
    /// Build the namespace for `spec` using `rng` for size/shape draws.
    pub fn build(spec: &WorkloadSpec, rng: &mut StdRng) -> Namespace {
        let mut b = Builder {
            spec,
            files: Vec::new(),
            paths: PathInterner::new(),
        };

        // Shared tools and libraries.
        let mut shared = Vec::with_capacity(spec.shared_files);
        for i in 0..spec.shared_files {
            let (dir, kind) = if i % 2 == 0 {
                ("bin", "tool")
            } else {
                ("lib", "lib")
            };
            let path = format!("/usr/{dir}/{kind}-{i}");
            shared.push(b.add_file(&path, DevId::new(0), true, rng));
        }

        // Per-user project files.
        let mut user_files: Vec<Vec<FileId>> = Vec::with_capacity(spec.num_users as usize);
        for uid in 0..spec.num_users {
            let dev = DevId::new(1 + uid % spec.num_devs.max(1));
            let mut files = Vec::new();
            // Enough project files to cover the user's private apps, plus
            // cold namespace mass so caches can't trivially hold everything.
            let per_app = spec.files_per_app.1;
            let needed = (spec.private_apps_per_user * per_app).max(4) + spec.extra_files_per_user;
            let per_proj = per_app.max(4);
            let projects = needed.div_ceil(per_proj);
            for p in 0..projects {
                for f in 0..per_proj {
                    let path = project_path(uid, p, f, spec.project_depth);
                    let read_only = rng.gen_bool(0.7);
                    files.push(b.add_file(&path, dev, read_only, rng));
                }
            }
            user_files.push(files);
        }

        // Shared project areas for global apps (class dirs, job input dirs).
        let mut global_apps = Vec::with_capacity(spec.global_apps);
        for g in 0..spec.global_apps {
            let dev = DevId::new(g as u32 % spec.num_devs.max(1));
            let len = rng.gen_range(spec.files_per_app.0..=spec.files_per_app.1);
            let mut sequence = Vec::with_capacity(len + 2);
            // Apps start by touching a shared tool, like an exec of gcc.
            sequence.push(shared[g % shared.len().max(1)]);
            for f in 0..len {
                let path = format!("/share/app-{g}/data-{f}");
                sequence.push(b.add_file(&path, dev, true, rng));
            }
            // ... and link a library.
            sequence.push(shared[(g * 7 + 1) % shared.len().max(1)]);
            global_apps.push(AppTemplate {
                owner: None,
                sequence,
                loops: spec.loops_per_run,
            });
        }

        // LLNL-style rank expansion: each global app gains `parallel_ranks`
        // variants sharing its input prefix plus rank-private checkpoints.
        let mut apps: Vec<AppTemplate> = Vec::new();
        if spec.parallel_ranks > 1 {
            for (g, app) in global_apps.iter().enumerate() {
                for r in 0..spec.parallel_ranks {
                    let dev = DevId::new(g as u32 % spec.num_devs.max(1));
                    let mut sequence = app.sequence.clone();
                    let ckpts = rng.gen_range(
                        spec.ckpts_per_rank.0..=spec.ckpts_per_rank.1.max(spec.ckpts_per_rank.0),
                    );
                    for c in 0..ckpts {
                        let path = format!("/scratch/job-{g}/rank-{r}/ckpt-{c}");
                        sequence.push(b.add_file(&path, dev, false, rng));
                    }
                    apps.push(AppTemplate {
                        owner: None,
                        sequence,
                        loops: spec.loops_per_run,
                    });
                }
            }
        } else {
            apps = global_apps;
        }
        let global_end = apps.len();

        // Private apps: ordered slices of the owner's project files plus
        // shared tool/lib touches, mimicking edit/compile/run cycles.
        let mut private_ranges = Vec::with_capacity(spec.num_users as usize);
        for uid in 0..spec.num_users {
            let start = apps.len();
            let mine = &user_files[uid as usize];
            for a in 0..spec.private_apps_per_user {
                if mine.is_empty() {
                    break;
                }
                let len = rng
                    .gen_range(spec.files_per_app.0..=spec.files_per_app.1)
                    .min(mine.len());
                let offset = rng.gen_range(0..mine.len());
                let mut sequence = Vec::with_capacity(len + 2);
                sequence.push(shared[(uid as usize + a) % shared.len().max(1)]);
                for k in 0..len {
                    sequence.push(mine[(offset + k) % mine.len()]);
                }
                sequence.push(shared[(uid as usize * 3 + a + 1) % shared.len().max(1)]);
                apps.push(AppTemplate {
                    owner: Some(UserId::new(uid)),
                    sequence,
                    loops: spec.loops_per_run,
                });
            }
            private_ranges.push((start, apps.len()));
        }

        Namespace {
            files: b.files,
            paths: b.paths,
            apps,
            global_end,
            private_ranges,
            user_files,
        }
    }

    /// Number of files in the namespace.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }
}

fn project_path(uid: u32, proj: usize, file: usize, depth: usize) -> String {
    // depth counts the directories between /home/uN and the file name.
    let mut p = format!("/home/u{uid}");
    p.push_str(&format!("/proj-{proj}"));
    for d in 1..depth {
        p.push_str(&format!("/d{d}"));
    }
    p.push_str(&format!("/file-{file}"));
    p
}

struct Builder<'a> {
    #[allow(dead_code)]
    spec: &'a WorkloadSpec,
    files: Vec<FileMeta>,
    paths: PathInterner,
}

impl Builder<'_> {
    fn add_file(&mut self, path: &str, dev: DevId, read_only: bool, rng: &mut StdRng) -> FileId {
        let id = FileId::new(self.files.len() as u32);
        // Sizes skewed small: most files tens of KB, tail to ~1 MB, mean in
        // the 108–189 KB band the paper cites for workstation clusters.
        let size = 4096 + (rng.gen_range(0.0f64..1.0).powi(3) * 1_000_000.0) as u64;
        self.files.push(FileMeta {
            path: Some(self.paths.parse(path)),
            dev,
            size,
            read_only,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn build(spec: &WorkloadSpec) -> Namespace {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        Namespace::build(spec, &mut rng)
    }

    #[test]
    fn every_app_sequence_references_valid_files() {
        let ns = build(&WorkloadSpec::hp());
        for app in &ns.apps {
            assert!(!app.sequence.is_empty());
            for &f in &app.sequence {
                assert!(f.index() < ns.files.len());
            }
        }
    }

    #[test]
    fn private_ranges_cover_owned_apps() {
        let spec = WorkloadSpec::hp();
        let ns = build(&spec);
        for (uid, &(start, end)) in ns.private_ranges.iter().enumerate() {
            for app in &ns.apps[start..end] {
                assert_eq!(app.owner, Some(UserId::new(uid as u32)));
            }
        }
        // Apps before global_end are unowned.
        for app in &ns.apps[..ns.global_end] {
            assert!(app.owner.is_none());
        }
    }

    #[test]
    fn all_files_have_paths() {
        let ns = build(&WorkloadSpec::hp());
        for f in &ns.files {
            assert!(f.path.is_some());
        }
    }

    #[test]
    fn rank_expansion_multiplies_global_apps() {
        let spec = WorkloadSpec::llnl();
        assert!(spec.parallel_ranks > 1);
        let ns = build(&spec);
        assert_eq!(ns.global_end, spec.global_apps * spec.parallel_ranks);
    }

    #[test]
    fn rank_variants_share_input_prefix() {
        let spec = WorkloadSpec::llnl();
        let ns = build(&spec);
        // Variants of app 0 occupy indices 0..parallel_ranks and share the
        // original input sequence as a prefix.
        let a = &ns.apps[0].sequence;
        let b = &ns.apps[1].sequence;
        let shared_prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        assert!(shared_prefix >= 2, "rank variants should share inputs");
        // But their tails (checkpoints) differ.
        assert_ne!(a.last(), b.last());
    }

    #[test]
    fn namespace_is_deterministic_for_seed() {
        let spec = WorkloadSpec::ins();
        let a = build(&spec);
        let b = build(&spec);
        assert_eq!(a.num_files(), b.num_files());
        assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.sequence, y.sequence);
        }
    }

    #[test]
    fn project_paths_honor_depth() {
        let p = project_path(3, 1, 2, 3);
        assert_eq!(p, "/home/u3/proj-1/d1/d2/file-2");
    }
}

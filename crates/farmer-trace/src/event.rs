//! Trace events: one record per file-system request.

use std::fmt;

use crate::ids::{DevId, FileId, HostId, ProcId, UserId};

/// File-system operation kind.
///
/// FARMER's mining is operation-agnostic — every request contributes to the
/// access sequence — but the metadata-server simulator distinguishes
/// metadata-mutating operations (create/unlink) from lookups, and workload
/// generators emit realistic mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// `open(2)`-style lookup; the canonical metadata request.
    Open,
    /// Data read (metadata must already be resident).
    Read,
    /// Data write.
    Write,
    /// `stat(2)`-style attribute query.
    Stat,
    /// File creation (inserts metadata).
    Create,
    /// File removal (invalidates metadata).
    Unlink,
    /// `close(2)`.
    Close,
}

impl Op {
    /// All operation kinds, in serialization order.
    pub const ALL: [Op; 7] = [
        Op::Open,
        Op::Read,
        Op::Write,
        Op::Stat,
        Op::Create,
        Op::Unlink,
        Op::Close,
    ];

    /// Short stable token used by the text trace format.
    pub fn token(self) -> &'static str {
        match self {
            Op::Open => "open",
            Op::Read => "read",
            Op::Write => "write",
            Op::Stat => "stat",
            Op::Create => "create",
            Op::Unlink => "unlink",
            Op::Close => "close",
        }
    }

    /// Parse a token produced by [`Op::token`].
    pub fn from_token(tok: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.token() == tok)
    }

    /// Whether this operation requires the file's metadata to be resident at
    /// the metadata server (i.e. constitutes a metadata *demand* request).
    pub fn is_metadata_demand(self) -> bool {
        !matches!(self, Op::Close)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One traced file-system request with its full semantic-attribute context.
///
/// This carries exactly the attribute set the paper's Extracting stage
/// collects: "timestamp, file name, user, group, program information, etc."
/// (§3.1 Stage 1). The path is looked up via the owning [`crate::Trace`]'s
/// file table — INS/RES-style traces have no recorded paths, which is
/// modelled at the trace level (`Trace::has_paths`), not per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dense event index within the trace (0-based).
    pub seq: u64,
    /// Virtual time in microseconds since trace start.
    pub timestamp_us: u64,
    /// Operation kind.
    pub op: Op,
    /// Which file the request targets.
    pub file: FileId,
    /// Device/volume holding the file.
    pub dev: DevId,
    /// Requesting user.
    pub uid: UserId,
    /// Requesting process (fresh id per program run).
    pub pid: ProcId,
    /// Requesting client host.
    pub host: HostId,
    /// Program identity (which application template the requesting process
    /// runs); `NO_APP` for background/daemon noise. Real traces carry this
    /// as the executable name; the PBS/PULS baselines condition on it.
    pub app: u32,
    /// Bytes transferred (0 for pure metadata ops).
    pub bytes: u64,
}

impl TraceEvent {
    /// Sentinel program id for background accesses with no application.
    pub const NO_APP: u32 = u32::MAX;
}

impl TraceEvent {
    /// A minimal event for tests: only identity fields, `Open`, time = seq.
    pub fn synthetic(seq: u64, file: FileId, uid: UserId, pid: ProcId, host: HostId) -> Self {
        TraceEvent {
            seq,
            timestamp_us: seq,
            op: Op::Open,
            file,
            dev: DevId::new(0),
            uid,
            pid,
            host,
            app: Self::NO_APP,
            bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_token_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_token(op.token()), Some(op));
        }
        assert_eq!(Op::from_token("bogus"), None);
    }

    #[test]
    fn op_display_matches_token() {
        assert_eq!(Op::Open.to_string(), "open");
        assert_eq!(Op::Unlink.to_string(), "unlink");
    }

    #[test]
    fn metadata_demand_classification() {
        assert!(Op::Open.is_metadata_demand());
        assert!(Op::Stat.is_metadata_demand());
        assert!(Op::Create.is_metadata_demand());
        assert!(!Op::Close.is_metadata_demand());
    }

    #[test]
    fn synthetic_event_defaults() {
        let e = TraceEvent::synthetic(
            5,
            FileId::new(1),
            UserId::new(2),
            ProcId::new(3),
            HostId::new(4),
        );
        assert_eq!(e.seq, 5);
        assert_eq!(e.timestamp_us, 5);
        assert_eq!(e.op, Op::Open);
        assert_eq!(e.bytes, 0);
    }
}

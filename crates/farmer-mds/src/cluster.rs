//! Multi-MDS clusters (§4.1): "use multiple metadata servers to coordinate
//! the metadata requests to metadata servers for load balancing".
//!
//! The cluster partitions the namespace across `num_servers` independent
//! MDS instances — each with its own cache, prefetcher and store shard —
//! and routes every demand to its owner. Two partitioning policies:
//!
//! * [`Partition::Hash`] — uniform hash of the file id; best balance,
//!   but correlated files scatter across servers, so each server's miner
//!   sees fragmented sequences.
//! * [`Partition::Dev`] — by device/volume, which keeps directory
//!   neighbourhoods (and therefore mineable correlations) on one server
//!   at the cost of balance.
//!
//! The report exposes aggregate latency plus a load-imbalance metric, so
//! the scaling experiment can show both effects.

use farmer_prefetch::Predictor;
use farmer_trace::hash::fx_hash_u64;
use farmer_trace::{Trace, TraceEvent};

use crate::latency::LatencyStats;
use crate::replay::ReplayConfig;
use crate::server::MdsServer;

/// Namespace partitioning policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Route by hashed file id (uniform).
    Hash,
    /// Route by the file's device/volume (locality-preserving).
    Dev,
}

/// Cluster-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of metadata servers.
    pub num_servers: usize,
    /// Per-server replay configuration (cache size, latency model, scale).
    pub replay: ReplayConfig,
    /// Partitioning policy.
    pub partition: Partition,
}

/// Outcome of a cluster replay.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Aggregate response-time statistics across all servers.
    pub latency: LatencyStats,
    /// Demands routed to each server.
    pub per_server_demands: Vec<u64>,
    /// Aggregate cache statistics.
    pub hits: u64,
    /// Total demand count.
    pub demands: u64,
}

impl ClusterReport {
    /// Aggregate average response (ms).
    pub fn avg_response_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// Aggregate hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.demands == 0 {
            0.0
        } else {
            self.hits as f64 / self.demands as f64
        }
    }

    /// Load imbalance: max per-server share / ideal share (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_server_demands.iter().sum();
        if total == 0 || self.per_server_demands.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.per_server_demands.len() as f64;
        let max = self.per_server_demands.iter().max().copied().unwrap_or(0) as f64;
        max / ideal
    }
}

/// Replay a trace through a cluster of MDS instances. `make_predictor` is
/// called once per server so each shard owns an independent model.
pub fn replay_cluster(
    trace: &Trace,
    mut make_predictor: impl FnMut() -> Box<dyn Predictor>,
    cfg: ClusterConfig,
) -> ClusterReport {
    assert!(cfg.num_servers > 0, "need at least one server");
    let mut servers: Vec<MdsServer> = (0..cfg.num_servers)
        .map(|_| MdsServer::new(trace, make_predictor(), cfg.replay.mds))
        .collect();
    let mut per_server_demands = vec![0u64; cfg.num_servers];

    for event in &trace.events {
        if !event.op.is_metadata_demand() {
            continue;
        }
        let shard = match cfg.partition {
            Partition::Hash => {
                (fx_hash_u64(event.file.raw() as u64) % cfg.num_servers as u64) as usize
            }
            Partition::Dev => (event.dev.raw() as usize) % cfg.num_servers,
        };
        let mut e: TraceEvent = *event;
        e.timestamp_us = (event.timestamp_us as f64 * cfg.replay.time_scale) as u64;
        servers[shard].demand(trace, &e);
        per_server_demands[shard] += 1;
    }

    let mut latency = LatencyStats::new();
    let mut hits = 0;
    let mut demands = 0;
    for s in &servers {
        latency.merge(s.stats());
        let cs = s.cache_stats();
        hits += cs.hits;
        demands += cs.demand_accesses;
    }
    ClusterReport {
        latency,
        per_server_demands,
        hits,
        demands,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_prefetch::baselines::LruOnly;
    use farmer_prefetch::FpaPredictor;
    use farmer_trace::{TraceFamily, WorkloadSpec};

    fn cfg(n: usize, partition: Partition) -> ClusterConfig {
        ClusterConfig {
            num_servers: n,
            replay: ReplayConfig::for_family(TraceFamily::Hp),
            partition,
        }
    }

    #[test]
    fn all_demands_are_served() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let r = replay_cluster(&trace, || Box::new(LruOnly), cfg(4, Partition::Hash));
        let demands = trace
            .events
            .iter()
            .filter(|e| e.op.is_metadata_demand())
            .count();
        assert_eq!(r.demands as usize, demands);
        assert_eq!(r.per_server_demands.iter().sum::<u64>() as usize, demands);
    }

    #[test]
    fn hash_partition_balances_load() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let r = replay_cluster(&trace, || Box::new(LruOnly), cfg(4, Partition::Hash));
        assert!(r.imbalance() < 1.5, "hash imbalance {}", r.imbalance());
    }

    #[test]
    fn more_servers_reduce_response_under_load() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let mut heavy = cfg(1, Partition::Hash);
        heavy.replay.time_scale = 0.6; // push the single server hard
        let one = replay_cluster(&trace, || Box::new(LruOnly), heavy);
        let mut four = heavy;
        four.num_servers = 4;
        let quad = replay_cluster(&trace, || Box::new(LruOnly), four);
        assert!(
            quad.avg_response_ms() < one.avg_response_ms(),
            "4 servers {:.3}ms should beat 1 server {:.3}ms",
            quad.avg_response_ms(),
            one.avg_response_ms()
        );
    }

    #[test]
    fn fpa_still_helps_in_cluster_mode() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let c = cfg(4, Partition::Hash);
        let lru = replay_cluster(&trace, || Box::new(LruOnly), c);
        let fpa = replay_cluster(&trace, || Box::new(FpaPredictor::for_trace(&trace)), c);
        assert!(
            fpa.avg_response_ms() < lru.avg_response_ms(),
            "FPA {:.3} vs LRU {:.3}",
            fpa.avg_response_ms(),
            lru.avg_response_ms()
        );
        assert!(fpa.hit_ratio() > lru.hit_ratio());
    }

    #[test]
    fn dev_partition_routes_by_volume() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let r = replay_cluster(&trace, || Box::new(LruOnly), cfg(4, Partition::Dev));
        // Dev routing is coarser, so some imbalance is expected — but every
        // request must still land somewhere.
        assert_eq!(r.per_server_demands.iter().sum::<u64>(), r.demands);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let _ = replay_cluster(&trace, || Box::new(LruOnly), cfg(0, Partition::Hash));
    }
}

//! FARMER-enabled file-data layout (§4.2).
//!
//! "We can merge several small files into one group to scale up the overall
//! system performance by enhancing the correlative file data locality. …
//! as an initial attempt, only read only files are considered to be stored
//! in the same group." The grouping walks each file's sorted Correlator
//! List and greedily co-locates strongly correlated, read-only, not yet
//! grouped files, so that "whenever the predecessor is accessed, its
//! correlated files are batch read into the cache by a single I/O request".

use farmer_core::{CorrelationSource, Correlator};
use farmer_trace::{FileId, Trace};

use crate::osd::{OsdCluster, OsdConfig, OsdStats};

/// Parameters of the grouping pass.
#[derive(Debug, Clone, Copy)]
pub struct LayoutConfig {
    /// Minimum correlation degree for co-location (defaults to the model's
    /// `max_strength`).
    pub min_degree: f64,
    /// Maximum files per group (extent size bound).
    pub max_group: usize,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            min_degree: 0.4,
            max_group: 8,
        }
    }
}

/// A computed layout: group assignment per file.
#[derive(Debug, Clone)]
pub struct Layout {
    /// `file → group` (None = singleton/ungrouped).
    pub group_of: Vec<Option<u32>>,
    /// Number of groups formed.
    pub num_groups: u32,
    /// Number of files placed into groups.
    pub grouped_files: usize,
}

/// Build a layout from any mined correlation source (the live model, a
/// stream snapshot, a store view): greedy correlator-list grouping over
/// read-only files.
pub fn plan_layout(source: &dyn CorrelationSource, trace: &Trace, cfg: LayoutConfig) -> Layout {
    let n = trace.num_files();
    let mut group_of: Vec<Option<u32>> = vec![None; n];
    let mut num_groups = 0u32;
    let mut grouped_files = 0usize;
    let mut list: Vec<Correlator> = Vec::new();
    let mut members: Vec<FileId> = Vec::new();

    for file_idx in 0..n {
        let owner = FileId::new(file_idx as u32);
        if group_of[file_idx].is_some() || !trace.meta_of(owner).read_only {
            continue;
        }
        source.top_k_into(owner, usize::MAX, cfg.min_degree, &mut list);
        // Collect co-locatable successors: read-only, ungrouped.
        members.clear();
        members.extend(
            list.iter()
                .filter(|c| {
                    let m = trace.meta_of(c.file);
                    m.read_only && group_of[c.file.index()].is_none() && c.file != owner
                })
                .map(|c| c.file)
                .take(cfg.max_group.saturating_sub(1)),
        );
        if members.is_empty() {
            continue; // nothing to co-locate with: stay a singleton
        }
        let g = num_groups;
        num_groups += 1;
        group_of[file_idx] = Some(g);
        grouped_files += 1;
        for &m in &members {
            group_of[m.index()] = Some(g);
            grouped_files += 1;
        }
    }

    Layout {
        group_of,
        num_groups,
        grouped_files,
    }
}

/// Replay the trace's data reads against an OSD cluster, returning the
/// counters. Used to compare scattered vs grouped layouts.
pub fn replay_reads(trace: &Trace, layout: Option<&Layout>, osd_cfg: OsdConfig) -> OsdStats {
    let mut cluster = OsdCluster::new(osd_cfg, trace.num_files());
    if let Some(l) = layout {
        cluster.set_layout(l.group_of.clone());
    }
    for e in &trace.events {
        let bytes = if e.bytes > 0 {
            e.bytes
        } else {
            trace.meta_of(e.file).size.min(65536)
        };
        cluster.read(e.file, bytes);
    }
    cluster.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, FarmerConfig};
    use farmer_trace::WorkloadSpec;

    fn mined(trace: &Trace) -> Farmer {
        let cfg = if trace.family.has_paths() {
            FarmerConfig::default()
        } else {
            FarmerConfig::pathless()
        };
        Farmer::mine_trace(trace, cfg)
    }

    #[test]
    fn layout_groups_only_read_only_files() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let farmer = mined(&trace);
        let layout = plan_layout(&farmer, &trace, LayoutConfig::default());
        for (i, g) in layout.group_of.iter().enumerate() {
            if g.is_some() {
                assert!(
                    trace.meta_of(FileId::new(i as u32)).read_only,
                    "grouped file {i} must be read-only"
                );
            }
        }
        assert!(
            layout.num_groups > 0,
            "correlated namespace should form groups"
        );
        assert!(layout.grouped_files >= 2 * layout.num_groups as usize);
    }

    #[test]
    fn groups_respect_size_cap() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let farmer = mined(&trace);
        let cfg = LayoutConfig {
            min_degree: 0.3,
            max_group: 4,
        };
        let layout = plan_layout(&farmer, &trace, cfg);
        let mut sizes = std::collections::HashMap::new();
        for g in layout.group_of.iter().flatten() {
            *sizes.entry(*g).or_insert(0usize) += 1;
        }
        for (&g, &s) in &sizes {
            assert!(s <= cfg.max_group, "group {g} has {s} members");
        }
    }

    #[test]
    fn grouped_layout_reduces_seeks() {
        // The §4.2 claim: grouping correlated read-only files turns random
        // I/O into sequential I/O.
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let farmer = mined(&trace);
        let layout = plan_layout(&farmer, &trace, LayoutConfig::default());
        let scattered = replay_reads(&trace, None, OsdConfig::default());
        let grouped = replay_reads(&trace, Some(&layout), OsdConfig::default());
        assert!(
            grouped.seeks < scattered.seeks,
            "grouping must save seeks: {} vs {}",
            grouped.seeks,
            scattered.seeks
        );
        assert!(grouped.busy_us < scattered.busy_us);
        assert_eq!(grouped.reads, scattered.reads);
    }

    #[test]
    fn higher_threshold_groups_fewer_files() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let farmer = mined(&trace);
        let loose = plan_layout(
            &farmer,
            &trace,
            LayoutConfig {
                min_degree: 0.2,
                max_group: 8,
            },
        );
        let strict = plan_layout(
            &farmer,
            &trace,
            LayoutConfig {
                min_degree: 0.8,
                max_group: 8,
            },
        );
        assert!(strict.grouped_files <= loose.grouped_files);
    }
}

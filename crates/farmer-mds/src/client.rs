//! The client tier (§5.1: "Clients run applications and provide general
//! access interfaces for applications").
//!
//! Each client host keeps a small local metadata cache; lookups that hit
//! locally never reach the metadata server at all. The tier therefore (a)
//! absorbs re-references with a near-zero local latency and (b) thins and
//! *decorrelates* the stream the MDS observes — which is why server-side
//! mining still matters even with client caching, and why the combination
//! is the realistic deployment the replay offers via
//! [`crate::replay::ReplayConfig`]-driven runs with a client tier in front.

use farmer_prefetch::MetadataCache;
use farmer_trace::{FileId, HostId};

/// Per-host client caches.
#[derive(Debug)]
pub struct ClientTier {
    caches: Vec<MetadataCache>,
    /// Local (client-side) hit latency in µs.
    pub local_hit_us: u64,
}

impl ClientTier {
    /// Build a tier of `num_hosts` caches with `capacity` entries each
    /// (capacity 0 is rejected — use `Option<ClientTier>` to disable).
    pub fn new(num_hosts: usize, capacity: usize, local_hit_us: u64) -> Self {
        assert!(num_hosts > 0, "need at least one host");
        ClientTier {
            caches: (0..num_hosts)
                .map(|_| MetadataCache::new(capacity))
                .collect(),
            local_hit_us,
        }
    }

    /// Probe the host's local cache; on hit returns the local latency.
    pub fn lookup(&mut self, host: HostId, file: FileId) -> Option<u64> {
        let idx = host.index() % self.caches.len();
        let hit = self.caches[idx].access(file);
        hit.then_some(self.local_hit_us)
    }

    /// Install metadata returned by the MDS into the host's local cache.
    pub fn fill(&mut self, host: HostId, file: FileId) {
        let idx = host.index() % self.caches.len();
        self.caches[idx].insert_demand(file);
    }

    /// Invalidate a file on every host (metadata mutation coherence).
    pub fn invalidate_all(&mut self, file: FileId) {
        for cache in &mut self.caches {
            cache.invalidate(file);
        }
    }

    /// Aggregate local hit count across hosts.
    pub fn local_hits(&self) -> u64 {
        self.caches.iter().map(|c| c.stats().hits).sum()
    }

    /// Aggregate local lookups across hosts.
    pub fn local_lookups(&self) -> u64 {
        self.caches.iter().map(|c| c.stats().demand_accesses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId::new(i)
    }
    fn h(i: u32) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tier = ClientTier::new(2, 4, 5);
        assert_eq!(tier.lookup(h(0), f(1)), None);
        tier.fill(h(0), f(1));
        assert_eq!(tier.lookup(h(0), f(1)), Some(5));
    }

    #[test]
    fn hosts_are_isolated() {
        let mut tier = ClientTier::new(2, 4, 5);
        tier.fill(h(0), f(1));
        assert_eq!(tier.lookup(h(1), f(1)), None, "host 1 has its own cache");
        assert_eq!(tier.lookup(h(0), f(1)), Some(5));
    }

    #[test]
    fn invalidate_reaches_every_host() {
        let mut tier = ClientTier::new(3, 4, 5);
        for host in 0..3 {
            tier.fill(h(host), f(7));
        }
        tier.invalidate_all(f(7));
        for host in 0..3 {
            assert_eq!(tier.lookup(h(host), f(7)), None);
        }
    }

    #[test]
    fn stats_aggregate() {
        let mut tier = ClientTier::new(2, 4, 5);
        tier.fill(h(0), f(1));
        tier.lookup(h(0), f(1)); // hit
        tier.lookup(h(1), f(1)); // miss
        assert_eq!(tier.local_hits(), 1);
        assert_eq!(tier.local_lookups(), 2);
    }

    #[test]
    fn host_ids_wrap_into_range() {
        let mut tier = ClientTier::new(2, 4, 5);
        tier.fill(h(7), f(1)); // 7 % 2 == host 1
        assert_eq!(tier.lookup(h(1), f(1)), Some(5));
    }
}

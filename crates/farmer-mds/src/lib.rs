//! # farmer-mds — a discrete-event metadata-server simulator (HUSt's role)
//!
//! The paper evaluates FARMER inside HUSt, an object-based storage system:
//! clients issue metadata requests to an MDS backed by Berkeley DB, with a
//! **priority-based request-scheduling model** — "a metadata server uses
//! two request queues to guarantee the availability of service for the
//! demand requests queue that is of higher priority than the prefetching
//! request queue" (§4.1). OSDs hold object data; FARMER's correlator lists
//! additionally drive grouped file-data layout (§4.2).
//!
//! This crate simulates that system:
//!
//! * [`latency`] — the service-time model (cache probe, per-page store
//!   access, batched prefetch reads) and response-time statistics,
//! * [`queues`] — the bounded low-priority prefetch queue; demand requests
//!   have strict priority and preempt *queued* (not in-service) prefetches,
//! * [`server`] — the MDS: metadata cache + predictor + embedded store,
//!   processing one demand arrival at a time and draining prefetches in
//!   idle gaps,
//! * [`mod@replay`] — trace-driven closed-form replay producing the average
//!   response times behind Figures 6 and 8,
//! * [`osd`]/[`layout`] — object placement and the FARMER-enabled grouped
//!   data layout with a seek/transfer cost model,
//! * [`cluster`] — multi-MDS load balancing (§4.1's first direction):
//!   hash- or volume-partitioned namespaces across independent servers.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod latency;
pub mod layout;
pub mod osd;
pub mod queues;
pub mod replay;
pub mod server;

pub use client::ClientTier;
pub use cluster::{replay_cluster, ClusterConfig, ClusterReport, Partition};
pub use latency::{LatencyModel, LatencyStats};
pub use replay::{
    replay, replay_instrumented, replay_online, replay_online_instrumented, OnlineReplayReport,
    ReplayConfig, ReplayReport,
};
pub use server::{MdsMetrics, MdsServer};

//! Trace-driven MDS replay: the measurement loop behind Figures 6 and 8.
//!
//! Arrival times come from the trace, optionally compressed or stretched
//! by `time_scale` to hit a target offered load. The per-family default
//! scales were chosen so the *demand* utilization sits in the regime the
//! paper reports (~1–2 ms average response): high enough that queueing and
//! prefetch-service contention matter, low enough that queues stay stable.

use farmer_obs::Registry;
use farmer_prefetch::{OnlineConfig, OnlineDriver, OnlineRunStats, Predictor};
use farmer_trace::phases::{phase_count, phase_end};
use farmer_trace::{Trace, TraceEvent, TraceFamily};

use crate::latency::LatencyStats;
use crate::server::{MdsConfig, MdsCounters, MdsServer};

/// Parameters of one replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// MDS configuration.
    pub mds: MdsConfig,
    /// Multiplier applied to trace timestamps (>1 stretches = lighter load).
    pub time_scale: f64,
    /// Per-host client cache capacity (0 disables the client tier — the
    /// paper's measurements are server-side, so the per-family defaults
    /// keep it off; turn it on to model a full HUSt deployment).
    pub client_cache: usize,
    /// Client-local hit latency in µs (only used with a client tier).
    pub client_hit_us: u64,
    /// Number of equal event-index segments to additionally report mean
    /// response time over ([`ReplayReport::phase_mean_ms`]). `1` disables
    /// segmentation; phase-shifting scenarios use ≥ 2 so latency spikes at
    /// correlation breaks are visible instead of averaged away.
    ///
    /// With `num_phases > 1` the run reports exactly
    /// [`phase_count(len, num_phases)`](farmer_trace::phases::phase_count)
    /// segments — `min(num_phases, max(len, 1))`, balanced — so a trace
    /// shorter than the requested phase count degrades to one phase per
    /// event instead of a wrong segment count. With `num_phases == 1`
    /// [`ReplayReport::phase_mean_ms`] stays empty.
    pub num_phases: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            mds: MdsConfig::default(),
            time_scale: 1.0,
            client_cache: 0,
            client_hit_us: 5,
            num_phases: 1,
        }
    }
}

impl ReplayConfig {
    /// Per-family defaults: cache sizes follow the cache-simulation
    /// experiments; time scales bring each trace's offered load into the
    /// ~40–70 % utilization band for the LRU (no-prefetch) baseline.
    pub fn for_family(family: TraceFamily) -> Self {
        let (cache_capacity, time_scale) = match family {
            TraceFamily::Llnl => (768, 16.0),
            TraceFamily::Ins => (128, 0.45),
            TraceFamily::Res => (128, 1.6),
            TraceFamily::Hp => (256, 1.7),
        };
        let mut mds = MdsConfig::default();
        mds.cache_capacity = cache_capacity;
        ReplayConfig {
            mds,
            time_scale,
            ..Default::default()
        }
    }
}

/// The outcome of one replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Predictor display name.
    pub predictor: String,
    /// Trace label.
    pub trace: String,
    /// Response-time statistics over all demand requests.
    pub latency: LatencyStats,
    /// MDS counters (busy time, prefetch services/drops).
    pub counters: MdsCounters,
    /// Cache counters (hit ratio, accuracy).
    pub cache: farmer_prefetch::CacheStats,
    /// Simulated horizon in µs (for utilization).
    pub horizon_us: u64,
    /// Predictor state bytes at end of run.
    pub predictor_memory: usize,
    /// Demands absorbed by the client tier (0 when the tier is off).
    pub client_hits: u64,
    /// Mean response time (ms) per event-index segment when the run was
    /// configured with `num_phases > 1`; empty otherwise. Segments with no
    /// demand requests report 0.
    pub phase_mean_ms: Vec<f64>,
    /// Median response time (ms) per segment, from the phase-delta of the
    /// latency histogram; same indexing as `phase_mean_ms`.
    pub phase_p50_ms: Vec<f64>,
    /// 95th-percentile response time (ms) per segment.
    pub phase_p95_ms: Vec<f64>,
    /// 99th-percentile response time (ms) per segment.
    pub phase_p99_ms: Vec<f64>,
}

impl ReplayReport {
    /// Average response time in milliseconds — the paper's Figure 6/8 metric.
    pub fn avg_response_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// Server utilization (busy time / horizon).
    pub fn utilization(&self) -> f64 {
        if self.horizon_us == 0 {
            0.0
        } else {
            self.counters.busy_us as f64 / self.horizon_us as f64
        }
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} {:<6} resp={:.3}ms p95={:.2}ms hit={:.1}% acc={:.1}% util={:.0}% pf={}/{} dropped",
            self.predictor,
            self.trace.split('(').next().unwrap_or(&self.trace),
            self.avg_response_ms(),
            self.latency.percentile_us(0.95) as f64 / 1000.0,
            100.0 * self.cache.hit_ratio(),
            100.0 * self.cache.prefetch_accuracy(),
            100.0 * self.utilization(),
            self.counters.prefetches_serviced,
            self.counters.prefetches_dropped,
        )
    }
}

/// Replay a trace's metadata demand stream through an MDS, optionally
/// fronted by per-host client caches.
pub fn replay(trace: &Trace, predictor: Box<dyn Predictor>, cfg: ReplayConfig) -> ReplayReport {
    run_replay(trace, predictor, cfg, None, &Registry::disabled()).0
}

/// [`replay`] with live observability: the MDS's service-time histograms
/// stream into `mds.*`, its cache into `cache.*` and its store into
/// `store.*` of `reg`. With a disabled registry this is exactly
/// [`replay`].
pub fn replay_instrumented(
    trace: &Trace,
    predictor: Box<dyn Predictor>,
    cfg: ReplayConfig,
    reg: &Registry,
) -> ReplayReport {
    run_replay(trace, predictor, cfg, None, reg).0
}

/// Online-mode counters of one [`replay_online`] run.
#[derive(Debug, Clone)]
pub struct OnlineReplayReport {
    /// The replay report (identical accounting to [`replay`]).
    pub replay: ReplayReport,
    /// Miner-side counters: refreshes installed, tracked files,
    /// evictions, resident bytes.
    pub online: OnlineRunStats,
}

/// Run one **online** replay: the MDS's predictor serves from periodic
/// snapshots of a live `farmer_stream::ShardedMiner` co-driven with the
/// replay — the sibling of `farmer_prefetch::simulate_online` for the
/// response-time axis. Per event, a due snapshot refresh is installed
/// first ([`MdsServer::refresh_predictor`]), the event is routed to the
/// miner (unlinks as forgets, metadata demands as observations), and the
/// MDS then serves the demand from the last-installed snapshot.
///
/// # Panics
/// Panics if the installed predictor rejects external sources
/// (`Predictor::refresh_source` returns `false`) or if
/// `online.refresh_interval` is zero.
pub fn replay_online(
    trace: &Trace,
    predictor: Box<dyn Predictor>,
    cfg: ReplayConfig,
    online: &OnlineConfig,
) -> OnlineReplayReport {
    replay_online_instrumented(trace, predictor, cfg, online, &Registry::disabled())
}

/// [`replay_online`] with live observability: the MDS under `mds.*` /
/// `cache.*` / `store.*`, the co-driven miner under `stream.*` and the
/// refresh cadence under `online.*` of `reg`. With a disabled registry
/// this is exactly [`replay_online`].
pub fn replay_online_instrumented(
    trace: &Trace,
    predictor: Box<dyn Predictor>,
    cfg: ReplayConfig,
    online: &OnlineConfig,
    reg: &Registry,
) -> OnlineReplayReport {
    let (replay, stats) = run_replay(trace, predictor, cfg, Some(online), reg);
    OnlineReplayReport {
        replay,
        // lint: allow(panic) run_replay returns Some stats whenever an
        // OnlineConfig is passed, which this wrapper always does
        online: stats.expect("online stats present when an OnlineConfig is supplied"),
    }
}

/// Shared core of [`replay`] and [`replay_online`]: one event loop, one
/// phase-accounting rule, with the online refresh hook threaded through
/// when configured.
fn run_replay(
    trace: &Trace,
    predictor: Box<dyn Predictor>,
    cfg: ReplayConfig,
    online: Option<&OnlineConfig>,
    reg: &Registry,
) -> (ReplayReport, Option<OnlineRunStats>) {
    let mut mds = MdsServer::new(trace, predictor, cfg.mds);
    mds.instrument(reg);
    let mut driver = online.map(|o| {
        let d = OnlineDriver::spawn_instrumented(o, reg);
        assert!(
            mds.refresh_predictor(OnlineDriver::initial_source(), 0),
            "online replay requires a predictor that accepts external \
             correlation sources (Predictor::refresh_source)"
        );
        d
    });
    let mut clients = (cfg.client_cache > 0).then(|| {
        crate::client::ClientTier::new(
            trace.num_hosts.max(1) as usize,
            cfg.client_cache,
            cfg.client_hit_us,
        )
    });
    let mut horizon = 0u64;
    let mut client_latency = LatencyStats::new();
    // Per-phase accounting: the combined MDS + client latency histogram is
    // snapshotted at equal event-index boundaries; each segment's delta
    // carries exact counts/sums (mean) and bucket counts (percentiles).
    let segments = phase_count(trace.len(), cfg.num_phases);
    let mut segment = 0usize;
    let mut phase_mean_ms = Vec::new();
    let mut phase_p50_ms = Vec::new();
    let mut phase_p95_ms = Vec::new();
    let mut phase_p99_ms = Vec::new();
    let mut mark = LatencyStats::new();
    let close_phase = |mds: &MdsServer, client: &LatencyStats, mark: &mut LatencyStats| {
        let mut now = mds.stats().clone();
        now.merge(client);
        let delta = now.delta(mark);
        *mark = now;
        delta
    };
    let mut push_phase = |delta: &LatencyStats| {
        phase_mean_ms.push(delta.mean_ms());
        phase_p50_ms.push(delta.percentile_us(0.50) as f64 / 1000.0);
        phase_p95_ms.push(delta.percentile_us(0.95) as f64 / 1000.0);
        phase_p99_ms.push(delta.percentile_us(0.99) as f64 / 1000.0);
    };
    for (i, event) in trace.events.iter().enumerate() {
        if cfg.num_phases > 1 && i == phase_end(trace.len(), segments, segment) {
            let delta = close_phase(&mds, &client_latency, &mut mark);
            push_phase(&delta);
            segment += 1;
        }
        if let Some(d) = driver.as_mut() {
            if let Some((source, events)) = d.snapshot_due(i) {
                mds.refresh_predictor(source, events);
            }
            d.route(trace, event);
        }
        if !event.op.is_metadata_demand() {
            continue;
        }
        let mut e: TraceEvent = *event;
        e.timestamp_us = (event.timestamp_us as f64 * cfg.time_scale) as u64;
        horizon = e.timestamp_us;
        if let Some(tier) = clients.as_mut() {
            if matches!(e.op, farmer_trace::Op::Unlink) {
                tier.invalidate_all(e.file);
            } else if let Some(local) = tier.lookup(e.host, e.file) {
                client_latency.record(local);
                continue; // absorbed locally, never reaches the MDS
            }
            mds.demand(trace, &e);
            tier.fill(e.host, e.file);
        } else {
            mds.demand(trace, &e);
        }
    }
    if cfg.num_phases > 1 {
        let delta = close_phase(&mds, &client_latency, &mut mark);
        push_phase(&delta);
    }
    let mut latency = mds.stats().clone();
    let client_hits = clients.as_ref().map_or(0, |t| t.local_hits());
    latency.merge(&client_latency);
    let report = ReplayReport {
        predictor: mds.predictor_name(),
        trace: trace.label.clone(),
        latency,
        counters: mds.counters(),
        cache: mds.cache_stats(),
        horizon_us: horizon,
        predictor_memory: mds.predictor_memory(),
        client_hits,
        phase_mean_ms,
        phase_p50_ms,
        phase_p95_ms,
        phase_p99_ms,
    };
    (report, driver.map(OnlineDriver::finish))
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_prefetch::baselines::LruOnly;
    use farmer_prefetch::{FpaPredictor, NexusPredictor};
    use farmer_trace::WorkloadSpec;

    #[test]
    fn replay_counts_all_demands() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let r = replay(&trace, Box::new(LruOnly), ReplayConfig::default());
        let demands = trace
            .events
            .iter()
            .filter(|e| e.op.is_metadata_demand())
            .count();
        assert_eq!(r.latency.count() as usize, demands);
        assert!(r.avg_response_ms() > 0.0);
    }

    #[test]
    fn phase_means_cover_the_run() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let mut cfg = ReplayConfig::for_family(trace.family);
        cfg.num_phases = 4;
        let r = replay(&trace, Box::new(LruOnly), cfg);
        assert_eq!(r.phase_mean_ms.len(), 4);
        assert!(r.phase_mean_ms.iter().all(|&m| m > 0.0));
        // The phase means bracket the overall mean.
        let lo = r.phase_mean_ms.iter().cloned().fold(f64::MAX, f64::min);
        let hi = r.phase_mean_ms.iter().cloned().fold(0.0, f64::max);
        assert!(lo <= r.avg_response_ms() && r.avg_response_ms() <= hi);
        // Segmentation must not perturb the simulation itself.
        let mut plain = ReplayConfig::for_family(trace.family);
        plain.num_phases = 1;
        let p = replay(&trace, Box::new(LruOnly), plain);
        assert!(p.phase_mean_ms.is_empty());
        assert_eq!(p.latency.count(), r.latency.count());
        assert!((p.avg_response_ms() - r.avg_response_ms()).abs() < 1e-12);
    }

    #[test]
    fn phase_count_normalized_to_trace_length() {
        let full = WorkloadSpec::hp().scaled(0.02).generate();
        let mut cfg = ReplayConfig::for_family(full.family);
        cfg.num_phases = 5;
        // A 3-event trace asked for 5 phases reports exactly 3.
        let mut tiny = full.clone();
        tiny.events.truncate(3);
        let r = replay(&tiny, Box::new(LruOnly), cfg);
        assert_eq!(r.phase_mean_ms.len(), 3);
        // An empty trace reports one zero segment.
        let mut empty = full.clone();
        empty.events.clear();
        let r = replay(&empty, Box::new(LruOnly), cfg);
        assert_eq!(r.phase_mean_ms.len(), 1);
        assert_eq!(r.phase_mean_ms[0], 0.0);
        // A length not divisible by the phase count still reports the
        // requested number (the old ceil-stride rule dropped a segment).
        let mut five = full.clone();
        five.events.truncate(5);
        let mut cfg4 = ReplayConfig::for_family(five.family);
        cfg4.num_phases = 4;
        let r = replay(&five, Box::new(LruOnly), cfg4);
        assert_eq!(r.phase_mean_ms.len(), 4);
    }

    #[test]
    fn online_replay_refreshes_and_matches_accounting() {
        use farmer_stream::StreamConfig;
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let mut cfg = ReplayConfig::for_family(trace.family);
        cfg.num_phases = 4;
        let online = OnlineConfig::every(
            StreamConfig::default().with_node_cap(1 << 20),
            (trace.len() / 8).max(1),
        );
        let r = replay_online(
            &trace,
            Box::new(FpaPredictor::for_trace(&trace)),
            cfg,
            &online,
        );
        assert_eq!(r.online.refreshes, 7, "one refresh per interior boundary");
        assert_eq!(r.replay.phase_mean_ms.len(), 4);
        assert!(r.online.miner_state_bytes > 0);
        assert_eq!(r.online.miner_evictions, 0, "uncapped miner never evicts");
        // Same demand accounting as the offline replay.
        let off = replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg);
        assert_eq!(r.replay.latency.count(), off.latency.count());
        assert!(r.replay.avg_response_ms() > 0.0);
    }

    #[test]
    fn phase_quantiles_accompany_phase_means() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let mut cfg = ReplayConfig::for_family(trace.family);
        cfg.num_phases = 4;
        let r = replay(&trace, Box::new(LruOnly), cfg);
        assert_eq!(r.phase_p50_ms.len(), 4);
        assert_eq!(r.phase_p95_ms.len(), 4);
        assert_eq!(r.phase_p99_ms.len(), 4);
        for i in 0..4 {
            assert!(r.phase_p50_ms[i] > 0.0);
            assert!(r.phase_p50_ms[i] <= r.phase_p95_ms[i]);
            assert!(r.phase_p95_ms[i] <= r.phase_p99_ms[i]);
        }
        // Single-phase runs carry no segmentation.
        let mut plain = cfg;
        plain.num_phases = 1;
        let p = replay(&trace, Box::new(LruOnly), plain);
        assert!(p.phase_p50_ms.is_empty());
    }

    #[test]
    fn instrumented_replay_streams_service_times() {
        use farmer_obs::Registry;
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let cfg = ReplayConfig::for_family(trace.family);
        let reg = Registry::enabled();
        let r = replay_instrumented(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mds.demands"), Some(r.counters.demands));
        let resp = snap
            .histogram("mds.demand_response_us")
            .expect("response histogram");
        assert_eq!(resp.count, r.counters.demands);
        // The registry's distribution agrees with the report's accumulator
        // (no client tier here, so they record the same samples).
        assert_eq!(resp.quantile(0.95), r.latency.percentile_us(0.95));
        assert!((resp.mean() - r.latency.mean_us()).abs() < 1e-9);
        let pf = snap
            .histogram("mds.prefetch_service_us")
            .expect("prefetch histogram");
        assert_eq!(pf.count, r.counters.prefetches_serviced);
        assert_eq!(
            snap.counter("mds.prefetches_dropped"),
            Some(r.counters.prefetches_dropped)
        );
        // Cache and store stream into the same registry.
        assert_eq!(snap.counter("cache.hits"), Some(r.cache.hits));
        assert!(
            snap.counter("store.page_reads")
                .expect("store instrumented")
                > 0,
            "cold misses must descend into the store"
        );
        // Instrumentation must not change the simulated outcome.
        let p = replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg);
        assert_eq!(p.latency.count(), r.latency.count());
        assert!((p.avg_response_ms() - r.avg_response_ms()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "accepts external")]
    fn online_replay_rejects_self_mining_predictors() {
        use farmer_stream::StreamConfig;
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let online = OnlineConfig::every(StreamConfig::default(), 100);
        let _ = replay_online(&trace, Box::new(LruOnly), ReplayConfig::default(), &online);
    }

    #[test]
    fn stretching_time_reduces_queueing() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let mut tight = ReplayConfig::default();
        tight.time_scale = 0.2; // compressed arrivals = heavy load
        let mut loose = ReplayConfig::default();
        loose.time_scale = 5.0;
        let r_tight = replay(&trace, Box::new(LruOnly), tight);
        let r_loose = replay(&trace, Box::new(LruOnly), loose);
        assert!(
            r_tight.avg_response_ms() > r_loose.avg_response_ms(),
            "load must increase response: {} vs {}",
            r_tight.avg_response_ms(),
            r_loose.avg_response_ms()
        );
    }

    #[test]
    fn fpa_beats_lru_on_response_time() {
        // Figure 8's core shape on a mid-size HP trace.
        let trace = WorkloadSpec::hp().scaled(0.2).generate();
        let cfg = ReplayConfig::for_family(trace.family);
        let lru = replay(&trace, Box::new(LruOnly), cfg);
        let fpa = replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg);
        assert!(
            fpa.avg_response_ms() < lru.avg_response_ms(),
            "FPA {:.3} must beat LRU {:.3}",
            fpa.avg_response_ms(),
            lru.avg_response_ms()
        );
    }

    #[test]
    fn fpa_beats_nexus_on_response_time() {
        let trace = WorkloadSpec::hp().scaled(0.2).generate();
        let cfg = ReplayConfig::for_family(trace.family);
        let nexus = replay(&trace, Box::new(NexusPredictor::paper_default()), cfg);
        let fpa = replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg);
        assert!(
            fpa.avg_response_ms() < nexus.avg_response_ms(),
            "FPA {:.3} must beat Nexus {:.3}",
            fpa.avg_response_ms(),
            nexus.avg_response_ms()
        );
    }

    #[test]
    fn client_tier_absorbs_rereferences() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let base = ReplayConfig::for_family(trace.family);
        let mut with_clients = base;
        with_clients.client_cache = 64;
        let plain = replay(&trace, Box::new(LruOnly), base);
        let tiered = replay(&trace, Box::new(LruOnly), with_clients);
        assert!(tiered.client_hits > 0, "client caches must absorb traffic");
        assert!(
            tiered.counters.demands < plain.counters.demands,
            "MDS must see fewer demands behind client caches"
        );
        assert!(
            tiered.avg_response_ms() < plain.avg_response_ms(),
            "end-to-end latency must improve: {:.3} vs {:.3}",
            tiered.avg_response_ms(),
            plain.avg_response_ms()
        );
        // Every demand is still accounted once, locally or at the MDS.
        assert_eq!(
            tiered.latency.count(),
            plain.latency.count(),
            "no request may vanish"
        );
    }

    #[test]
    fn utilization_bounded() {
        let trace = WorkloadSpec::ins().scaled(0.05).generate();
        let r = replay(
            &trace,
            Box::new(LruOnly),
            ReplayConfig::for_family(trace.family),
        );
        assert!(r.utilization() > 0.0);
        assert!(r.utilization() <= 1.05, "utilization {}", r.utilization());
    }
}

//! Object storage devices: placement and a seek/transfer cost model.
//!
//! OSDs "are actual storage depositories for object data, and provide the
//! object-based interface for clients' accesses" (§5.1). For the layout
//! experiments we model the property §4.2 exploits: reading files that are
//! laid out **contiguously in the same group** costs one seek for the whole
//! batch, while scattered files pay a seek each — "batched I/O operations
//! … are transformed from random I/Os to sequential I/Os".

use farmer_trace::FileId;

/// Cost-model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsdConfig {
    /// Number of OSDs in the cluster.
    pub num_osds: usize,
    /// Cost of repositioning to a new group/extent (µs).
    pub seek_us: u64,
    /// Transfer cost per KiB (µs).
    pub transfer_us_per_kib: u64,
}

impl Default for OsdConfig {
    fn default() -> Self {
        OsdConfig {
            num_osds: 8,
            seek_us: 8000,
            transfer_us_per_kib: 25,
        }
    }
}

/// Cumulative OSD counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsdStats {
    /// Object reads served.
    pub reads: u64,
    /// Seeks paid (group/extent switches).
    pub seeks: u64,
    /// Total simulated service time (µs).
    pub busy_us: u64,
}

/// The OSD cluster: placement plus per-device locality state.
#[derive(Debug)]
pub struct OsdCluster {
    cfg: OsdConfig,
    /// `file → group`: files in the same group are contiguous on disk.
    /// Ungrouped files are singleton extents.
    group_of: Vec<Option<u32>>,
    /// Per-OSD last-touched extent: `Some(group)` or the file itself
    /// encoded as `u32::MAX - raw` for singletons.
    last_extent: Vec<Option<u64>>,
    stats: OsdStats,
}

impl OsdCluster {
    /// A cluster over `num_files` with no grouping (every file scattered).
    pub fn new(cfg: OsdConfig, num_files: usize) -> Self {
        assert!(cfg.num_osds > 0, "need at least one OSD");
        OsdCluster {
            group_of: vec![None; num_files],
            last_extent: vec![None; cfg.num_osds],
            stats: OsdStats::default(),
            cfg,
        }
    }

    /// Install a layout: `group_of[file] = Some(g)` for grouped files.
    pub fn set_layout(&mut self, group_of: Vec<Option<u32>>) {
        assert_eq!(group_of.len(), self.group_of.len(), "layout size mismatch");
        self.group_of = group_of;
        // New physical layout invalidates positional locality.
        for e in &mut self.last_extent {
            *e = None;
        }
    }

    /// Which OSD a file lives on. Grouped files are placed by group so the
    /// whole group is co-located; singletons are placed by file id.
    pub fn osd_of(&self, file: FileId) -> usize {
        match self.group_of[file.index()] {
            Some(g) => (g as usize) % self.cfg.num_osds,
            None => file.index() % self.cfg.num_osds,
        }
    }

    /// Serve one object read; returns its simulated cost in µs.
    pub fn read(&mut self, file: FileId, bytes: u64) -> u64 {
        let osd = self.osd_of(file);
        let extent = match self.group_of[file.index()] {
            Some(g) => g as u64,
            None => u64::MAX - file.raw() as u64,
        };
        let mut cost = (bytes / 1024).max(1) * self.cfg.transfer_us_per_kib;
        if self.last_extent[osd] != Some(extent) {
            cost += self.cfg.seek_us;
            self.stats.seeks += 1;
            self.last_extent[osd] = Some(extent);
        }
        self.stats.reads += 1;
        self.stats.busy_us += cost;
        cost
    }

    /// Counters so far.
    pub fn stats(&self) -> OsdStats {
        self.stats
    }

    /// Reset counters (layout comparisons reuse one cluster).
    pub fn reset_stats(&mut self) {
        self.stats = OsdStats::default();
        for e in &mut self.last_extent {
            *e = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId::new(i)
    }

    #[test]
    fn scattered_reads_pay_seeks() {
        let c = OsdCluster::new(OsdConfig::default(), 16);
        // All files on OSD 0 (num_osds=1 makes the locality state shared).
        let mut cfg = OsdConfig::default();
        cfg.num_osds = 1;
        let mut c1 = OsdCluster::new(cfg, 16);
        c1.read(f(0), 4096);
        c1.read(f(1), 4096);
        c1.read(f(2), 4096);
        assert_eq!(c1.stats().seeks, 3, "every scattered file seeks");
        drop(c);
    }

    #[test]
    fn grouped_reads_share_one_seek() {
        let mut cfg = OsdConfig::default();
        cfg.num_osds = 1;
        let mut c = OsdCluster::new(cfg, 16);
        let mut layout = vec![None; 16];
        for slot in layout.iter_mut().take(4) {
            *slot = Some(7);
        }
        c.set_layout(layout);
        for i in 0..4 {
            c.read(f(i as u32), 4096);
        }
        assert_eq!(c.stats().seeks, 1, "one seek for the whole group");
        assert_eq!(c.stats().reads, 4);
    }

    #[test]
    fn repeated_same_file_read_seeks_once() {
        let mut cfg = OsdConfig::default();
        cfg.num_osds = 1;
        let mut c = OsdCluster::new(cfg, 4);
        c.read(f(1), 1024);
        c.read(f(1), 1024);
        assert_eq!(c.stats().seeks, 1);
    }

    #[test]
    fn transfer_scales_with_size() {
        let mut c = OsdCluster::new(OsdConfig::default(), 4);
        let small = c.read(f(0), 1024);
        c.reset_stats();
        let large = c.read(f(0), 1024 * 64);
        assert!(large > small);
    }

    #[test]
    fn grouped_files_colocate() {
        let mut c = OsdCluster::new(OsdConfig::default(), 64);
        let mut layout = vec![None; 64];
        layout[3] = Some(5);
        layout[40] = Some(5);
        c.set_layout(layout);
        assert_eq!(c.osd_of(f(3)), c.osd_of(f(40)));
    }

    #[test]
    fn reset_clears_counters_and_locality() {
        let mut cfg = OsdConfig::default();
        cfg.num_osds = 1;
        let mut c = OsdCluster::new(cfg, 4);
        c.read(f(0), 1024);
        c.reset_stats();
        assert_eq!(c.stats(), OsdStats::default());
        c.read(f(0), 1024);
        assert_eq!(c.stats().seeks, 1, "locality must reset too");
    }

    #[test]
    #[should_panic(expected = "layout size mismatch")]
    fn layout_size_checked() {
        let mut c = OsdCluster::new(OsdConfig::default(), 4);
        c.set_layout(vec![None; 3]);
    }
}

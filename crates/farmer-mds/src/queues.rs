//! The bounded low-priority prefetch queue.
//!
//! "We identify demanding requests and prefetching requests by setting a
//! request attribute and provide a priority-based request-scheduling model
//! … two request queues to guarantee the availability of service for the
//! demand requests queue that is of higher priority than the prefetching
//! request queue." (§4.1)
//!
//! Demand requests are served the moment the server frees up; queued
//! prefetch requests only run in idle gaps. The prefetch queue is bounded:
//! when full, the *oldest* queued prefetch is dropped (its prediction is
//! the stalest), which bounds both memory and the staleness of speculative
//! work under load.

use std::collections::VecDeque;

use farmer_trace::FileId;

/// A queued prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// File whose metadata should be staged.
    pub file: FileId,
    /// Simulated enqueue time (µs).
    pub enqueued_at_us: u64,
}

/// Bounded FIFO of prefetch requests with drop accounting.
#[derive(Debug)]
pub struct PrefetchQueue {
    queue: VecDeque<PrefetchRequest>,
    capacity: usize,
    /// Requests dropped because the queue was full.
    pub dropped: u64,
    /// Requests ever enqueued (accepted).
    pub enqueued: u64,
}

impl PrefetchQueue {
    /// A queue holding at most `capacity` pending prefetches.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch queue capacity must be positive");
        PrefetchQueue {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            enqueued: 0,
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no prefetches are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueue a request, dropping the oldest if full.
    pub fn push(&mut self, req: PrefetchRequest) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.dropped += 1;
        }
        self.queue.push_back(req);
        self.enqueued += 1;
    }

    /// Dequeue the oldest pending request.
    pub fn pop(&mut self) -> Option<PrefetchRequest> {
        self.queue.pop_front()
    }

    /// Remove any pending request for `file` (it was just demanded, so
    /// prefetching it is pointless).
    pub fn cancel(&mut self, file: FileId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|r| r.file != file);
        before != self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(file: u32, t: u64) -> PrefetchRequest {
        PrefetchRequest {
            file: FileId::new(file),
            enqueued_at_us: t,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(1, 10));
        q.push(req(2, 20));
        assert_eq!(q.pop().unwrap().file, FileId::new(1));
        assert_eq!(q.pop().unwrap().file, FileId::new(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn full_queue_drops_oldest() {
        let mut q = PrefetchQueue::new(2);
        q.push(req(1, 1));
        q.push(req(2, 2));
        q.push(req(3, 3)); // drops 1
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.pop().unwrap().file, FileId::new(2));
        assert_eq!(q.pop().unwrap().file, FileId::new(3));
    }

    #[test]
    fn cancel_removes_pending() {
        let mut q = PrefetchQueue::new(4);
        q.push(req(1, 1));
        q.push(req(2, 2));
        assert!(q.cancel(FileId::new(1)));
        assert!(!q.cancel(FileId::new(1)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().file, FileId::new(2));
    }

    #[test]
    fn enqueue_counter_tracks_accepted() {
        let mut q = PrefetchQueue::new(1);
        q.push(req(1, 1));
        q.push(req(2, 2));
        assert_eq!(q.enqueued, 2);
        assert_eq!(q.dropped, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = PrefetchQueue::new(0);
    }
}

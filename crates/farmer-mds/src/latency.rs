//! Service-time model and response-time statistics.
//!
//! Calibrated to the scale the paper reports (average metadata response
//! times between ~1.0 and ~1.8 ms on the HP trace, Figure 6): a cache hit
//! costs a few tens of microseconds of CPU; a miss pays a per-page cost
//! for the Berkeley-DB-role store descent; prefetch service is cheaper per
//! file because correlated metadata is batch-read ("batch read into the
//! cache by a single I/O request", §4.2).

/// Tunable service-time constants (all microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Served-from-cache demand request.
    pub cache_hit_us: u64,
    /// Fixed CPU cost of a demand miss (request parsing, cache update).
    pub miss_cpu_us: u64,
    /// Per-page cost of a store descent on the miss path.
    pub page_us: u64,
    /// Fixed cost of serving one queued prefetch request (batched read;
    /// cheaper than a demand miss).
    pub prefetch_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            cache_hit_us: 30,
            miss_cpu_us: 200,
            page_us: 420,
            prefetch_us: 340,
        }
    }
}

impl LatencyModel {
    /// Service time of a demand request that hit the cache.
    #[inline]
    pub fn hit(&self) -> u64 {
        self.cache_hit_us
    }

    /// Service time of a demand miss that touched `pages` store pages.
    #[inline]
    pub fn miss(&self, pages: u64) -> u64 {
        self.miss_cpu_us + self.page_us * pages.max(1)
    }

    /// Service time of one prefetch request.
    #[inline]
    pub fn prefetch(&self) -> u64 {
        self.prefetch_us
    }
}

/// Streaming response-time statistics (mean, extremes, percentiles).
///
/// Backed by the workspace observability histogram
/// ([`farmer_obs::HistSnapshot`]): 64 log2 buckets keep the accumulator
/// O(1) per sample while making it mergeable (multi-server and client-tier
/// totals) and diffable (per-phase quantiles via
/// [`LatencyStats::delta`]) — the mean stays exact, quantiles are exact to
/// a power-of-two bucket and clamped to the observed maximum.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    hist: farmer_obs::HistSnapshot,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Record one response time in microseconds.
    pub fn record(&mut self, us: u64) {
        self.hist.record(us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.hist.count
    }

    /// Mean in microseconds (0 for an empty accumulator).
    pub fn mean_us(&self) -> f64 {
        self.hist.mean()
    }

    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us() / 1000.0
    }

    /// Largest sample.
    pub fn max_us(&self) -> u64 {
        self.hist.max
    }

    /// Smallest sample (0 if empty).
    pub fn min_us(&self) -> u64 {
        self.hist.min
    }

    /// Approximate percentile (0 < q ≤ 1): the upper bound of the log2
    /// bucket containing the q-quantile, clamped to the observed maximum.
    pub fn percentile_us(&self, q: f64) -> u64 {
        self.hist.quantile(q)
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }

    /// Samples recorded since `earlier` (an older snapshot of this same
    /// accumulator) — per-phase percentile accounting. Count, sum and
    /// buckets are exact; min/max conservatively keep the run-level bounds.
    pub fn delta(&self, earlier: &LatencyStats) -> LatencyStats {
        LatencyStats {
            hist: self.hist.delta(&earlier.hist),
        }
    }

    /// The underlying histogram snapshot (bucket-level export).
    pub fn histogram(&self) -> &farmer_obs::HistSnapshot {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_costs_are_ordered() {
        let m = LatencyModel::default();
        assert!(m.hit() < m.prefetch());
        assert!(m.prefetch() < m.miss(3));
        // Deeper trees cost more.
        assert!(m.miss(4) > m.miss(2));
    }

    #[test]
    fn miss_charges_at_least_one_page() {
        let m = LatencyModel::default();
        assert_eq!(m.miss(0), m.miss(1));
    }

    #[test]
    fn stats_mean_min_max() {
        let mut s = LatencyStats::new();
        for v in [100, 200, 300] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean_us() - 200.0).abs() < 1e-9);
        assert_eq!(s.min_us(), 100);
        assert_eq!(s.max_us(), 300);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = LatencyStats::new();
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.min_us(), 0);
        assert_eq!(s.percentile_us(0.5), 0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = LatencyStats::new();
        for v in 1..10_000u64 {
            s.record(v);
        }
        let p50 = s.percentile_us(0.5);
        let p95 = s.percentile_us(0.95);
        let p99 = s.percentile_us(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        // p50 of uniform 1..10k sits near 5k; log buckets give [4096, 8192].
        assert!((4096..=8192).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_us() - 20.0).abs() < 1e-9);
        assert_eq!(a.max_us(), 30);
        assert_eq!(a.min_us(), 10);
    }

    #[test]
    fn delta_gives_per_phase_percentiles() {
        let mut s = LatencyStats::new();
        for _ in 0..10 {
            s.record(100);
        }
        let mark = s.clone();
        for _ in 0..10 {
            s.record(5000);
        }
        let d = s.delta(&mark);
        assert_eq!(d.count(), 10);
        assert!((d.mean_us() - 5000.0).abs() < 1e-9, "delta mean is exact");
        // The slow phase's p50 reflects only the slow samples.
        assert!(
            d.percentile_us(0.5) >= 4096,
            "p50 = {}",
            d.percentile_us(0.5)
        );
        assert!(s.percentile_us(0.5) <= 128, "overall p50 still fast-half");
    }

    #[test]
    fn record_handles_zero_and_huge() {
        let mut s = LatencyStats::new();
        s.record(0);
        s.record(u64::MAX / 2);
        assert_eq!(s.count(), 2);
        assert!(s.percentile_us(0.99) > 0);
    }
}

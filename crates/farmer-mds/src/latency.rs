//! Service-time model and response-time statistics.
//!
//! Calibrated to the scale the paper reports (average metadata response
//! times between ~1.0 and ~1.8 ms on the HP trace, Figure 6): a cache hit
//! costs a few tens of microseconds of CPU; a miss pays a per-page cost
//! for the Berkeley-DB-role store descent; prefetch service is cheaper per
//! file because correlated metadata is batch-read ("batch read into the
//! cache by a single I/O request", §4.2).

/// Tunable service-time constants (all microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Served-from-cache demand request.
    pub cache_hit_us: u64,
    /// Fixed CPU cost of a demand miss (request parsing, cache update).
    pub miss_cpu_us: u64,
    /// Per-page cost of a store descent on the miss path.
    pub page_us: u64,
    /// Fixed cost of serving one queued prefetch request (batched read;
    /// cheaper than a demand miss).
    pub prefetch_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            cache_hit_us: 30,
            miss_cpu_us: 200,
            page_us: 420,
            prefetch_us: 340,
        }
    }
}

impl LatencyModel {
    /// Service time of a demand request that hit the cache.
    #[inline]
    pub fn hit(&self) -> u64 {
        self.cache_hit_us
    }

    /// Service time of a demand miss that touched `pages` store pages.
    #[inline]
    pub fn miss(&self, pages: u64) -> u64 {
        self.miss_cpu_us + self.page_us * pages.max(1)
    }

    /// Service time of one prefetch request.
    #[inline]
    pub fn prefetch(&self) -> u64 {
        self.prefetch_us
    }
}

/// Streaming response-time statistics (mean, extremes, percentiles).
///
/// Percentiles come from a fixed log-spaced histogram (1 µs – ~67 s), which
/// keeps the accumulator O(1) per sample and exact enough for reporting.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    count: u64,
    sum_us: u64,
    max_us: u64,
    min_us: u64,
    /// log2 buckets: bucket i counts samples in [2^i, 2^(i+1)).
    buckets: [u64; 36],
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum_us: 0,
            max_us: 0,
            min_us: u64::MAX,
            buckets: [0; 36],
        }
    }

    /// Record one response time in microseconds.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
        let b = (64 - us.max(1).leading_zeros() as usize - 1).min(35);
        self.buckets[b] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in microseconds (0 for an empty accumulator).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us() / 1000.0
    }

    /// Largest sample.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Smallest sample (0 if empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Approximate percentile (0 < q < 1) from the log histogram; returns
    /// the upper bound of the bucket containing the q-quantile.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_costs_are_ordered() {
        let m = LatencyModel::default();
        assert!(m.hit() < m.prefetch());
        assert!(m.prefetch() < m.miss(3));
        // Deeper trees cost more.
        assert!(m.miss(4) > m.miss(2));
    }

    #[test]
    fn miss_charges_at_least_one_page() {
        let m = LatencyModel::default();
        assert_eq!(m.miss(0), m.miss(1));
    }

    #[test]
    fn stats_mean_min_max() {
        let mut s = LatencyStats::new();
        for v in [100, 200, 300] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean_us() - 200.0).abs() < 1e-9);
        assert_eq!(s.min_us(), 100);
        assert_eq!(s.max_us(), 300);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = LatencyStats::new();
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.min_us(), 0);
        assert_eq!(s.percentile_us(0.5), 0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = LatencyStats::new();
        for v in 1..10_000u64 {
            s.record(v);
        }
        let p50 = s.percentile_us(0.5);
        let p95 = s.percentile_us(0.95);
        let p99 = s.percentile_us(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        // p50 of uniform 1..10k sits near 5k; log buckets give [4096, 8192].
        assert!((4096..=8192).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_us() - 20.0).abs() < 1e-9);
        assert_eq!(a.max_us(), 30);
        assert_eq!(a.min_us(), 10);
    }

    #[test]
    fn record_handles_zero_and_huge() {
        let mut s = LatencyStats::new();
        s.record(0);
        s.record(u64::MAX / 2);
        assert_eq!(s.count(), 2);
        assert!(s.percentile_us(0.99) > 0);
    }
}

//! The metadata server: cache + predictor + store + dual queues.
//!
//! A single non-preemptive server processes requests in simulated time:
//!
//! * **demand request at time `t`** — the server first drains any queued
//!   prefetches that *complete* before `t` (idle-gap work), then serves the
//!   demand starting at `max(t, server_free)`. A cache hit costs
//!   `hit()`; a miss performs a real store descent and pays per page
//!   touched. Response time = completion − arrival.
//! * **prefetch candidates** — after each demand, the predictor's
//!   candidates enter the bounded low-priority queue; each serviced
//!   prefetch performs the store lookup and installs the entry as a
//!   prefetch-tagged cache resident.
//!
//! Strict priority is non-preemptive: a demand can wait for at most one
//! in-service prefetch, never for the queue behind it — exactly the §4.1
//! guarantee.

use farmer_obs::{Counter, Gauge, Histogram, Registry};
use farmer_prefetch::{CacheMetrics, MetadataCache, Predictor};
use farmer_store::{MetaStore, MetadataRecord, StoreMetrics};
use farmer_trace::{Trace, TraceEvent};

use crate::latency::{LatencyModel, LatencyStats};
use crate::queues::{PrefetchQueue, PrefetchRequest};

/// Configuration of one MDS instance.
#[derive(Debug, Clone, Copy)]
pub struct MdsConfig {
    /// Metadata cache capacity (entries).
    pub cache_capacity: usize,
    /// Prefetch queue bound.
    pub prefetch_queue: usize,
    /// Per-access prefetch group ceiling.
    pub prefetch_limit: usize,
    /// Service-time constants.
    pub latency: LatencyModel,
}

impl Default for MdsConfig {
    fn default() -> Self {
        MdsConfig {
            cache_capacity: 512,
            prefetch_queue: 64,
            prefetch_limit: 4,
            latency: LatencyModel::default(),
        }
    }
}

/// Live observability handles for one MDS (the `mds.*` scope of the
/// workspace registry map). Service times are *simulated* microseconds
/// (`_us`), not wall-clock — the histograms replace the mean-only
/// [`MdsCounters`] view with full distributions. No-op by default.
#[derive(Debug, Clone, Default)]
pub struct MdsMetrics {
    /// Demand requests served (`mds.demands`).
    pub demands: Counter,
    /// Simulated service time per demand request, µs
    /// (`mds.demand_service_us`) — queueing delay excluded.
    pub demand_service_us: Histogram,
    /// Simulated response time per demand request, µs
    /// (`mds.demand_response_us`) — completion minus arrival, the paper's
    /// Figure 6/8 metric as a distribution.
    pub demand_response_us: Histogram,
    /// Prefetch requests serviced (`mds.prefetches_serviced`).
    pub prefetches_serviced: Counter,
    /// Simulated service time per serviced prefetch, µs
    /// (`mds.prefetch_service_us`).
    pub prefetch_service_us: Histogram,
    /// Prefetch requests dropped from the bounded queue
    /// (`mds.prefetches_dropped`).
    pub prefetches_dropped: Counter,
    /// Prefetch-queue depth after the most recent enqueue/drain
    /// (`mds.prefetch_queue_depth`).
    pub prefetch_queue_depth: Gauge,
    /// Cold restarts survived (`mds.restarts`).
    pub restarts: Counter,
}

impl MdsMetrics {
    /// Register the MDS metrics under `reg` (pass an `mds`-scoped
    /// registry; [`MdsServer::instrument`] does this).
    pub fn new(reg: &Registry) -> MdsMetrics {
        MdsMetrics {
            demands: reg.counter("demands"),
            demand_service_us: reg.histogram("demand_service_us"),
            demand_response_us: reg.histogram("demand_response_us"),
            prefetches_serviced: reg.counter("prefetches_serviced"),
            prefetch_service_us: reg.histogram("prefetch_service_us"),
            prefetches_dropped: reg.counter("prefetches_dropped"),
            prefetch_queue_depth: reg.gauge("prefetch_queue_depth"),
            restarts: reg.counter("restarts"),
        }
    }
}

/// Aggregate counters of one MDS run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MdsCounters {
    /// Demand requests served.
    pub demands: u64,
    /// Prefetch requests actually serviced.
    pub prefetches_serviced: u64,
    /// Prefetch requests dropped from the bounded queue.
    pub prefetches_dropped: u64,
    /// Busy time of the server in µs (utilization numerator).
    pub busy_us: u64,
}

/// The metadata server simulator.
pub struct MdsServer {
    cfg: MdsConfig,
    cache: MetadataCache,
    store: MetaStore,
    predictor: Box<dyn Predictor>,
    prefetch_q: PrefetchQueue,
    /// Simulated time at which the server becomes idle.
    free_at_us: u64,
    stats: LatencyStats,
    counters: MdsCounters,
    obs: MdsMetrics,
    /// Queue drops already mirrored into `obs.prefetches_dropped`.
    dropped_reported: u64,
    /// Reusable prefetch-candidate buffer, refilled per demand.
    candidates: Vec<farmer_trace::FileId>,
}

impl MdsServer {
    /// Build an MDS whose store is preloaded with the trace's namespace.
    pub fn new(trace: &Trace, predictor: Box<dyn Predictor>, cfg: MdsConfig) -> Self {
        let mut store = MetaStore::new();
        let records: Vec<MetadataRecord> = trace
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| MetadataRecord {
                file: farmer_trace::FileId::new(i as u32),
                size: f.size,
                dev: f.dev.raw(),
                read_only: f.read_only,
                group: None,
            })
            .collect();
        store.load_namespace(&records);

        MdsServer {
            cache: MetadataCache::new(cfg.cache_capacity),
            store,
            predictor,
            prefetch_q: PrefetchQueue::new(cfg.prefetch_queue),
            free_at_us: 0,
            stats: LatencyStats::new(),
            counters: MdsCounters::default(),
            obs: MdsMetrics::default(),
            dropped_reported: 0,
            candidates: Vec::new(),
            cfg,
        }
    }

    /// Register this server's metrics under the `mds`, `cache` and
    /// `store` scopes of `reg` (pass the run's *root* registry). With a
    /// disabled registry all handles stay no-ops.
    pub fn instrument(&mut self, reg: &Registry) {
        self.obs = MdsMetrics::new(&reg.scope("mds"));
        self.cache
            .instrument(CacheMetrics::new(&reg.scope("cache")));
        self.store
            .instrument(StoreMetrics::new(&reg.scope("store")));
    }

    /// Handle one demand arrival; returns its response time in µs.
    pub fn demand(&mut self, trace: &Trace, event: &TraceEvent) -> u64 {
        let now = event.timestamp_us;
        self.drain_prefetches_until(now);

        // If the demanded file is still waiting in the prefetch queue, the
        // demand supersedes it.
        self.prefetch_q.cancel(event.file);

        let start = self.free_at_us.max(now);
        let service = match event.op {
            // Metadata mutations go through the store unconditionally.
            farmer_trace::Op::Create => {
                let rec = MetadataRecord {
                    file: event.file,
                    size: 0,
                    dev: event.dev.raw(),
                    read_only: false,
                    group: None,
                };
                self.store.put_metadata(&rec);
                self.cache.access(event.file);
                self.cache.insert_demand(event.file);
                self.cfg.latency.miss(2)
            }
            farmer_trace::Op::Unlink => {
                self.store.remove_metadata(event.file);
                self.cache.access(event.file);
                self.cache.invalidate(event.file);
                self.cfg.latency.miss(2)
            }
            _ => {
                let hit = self.cache.access(event.file);
                if hit {
                    self.cfg.latency.hit()
                } else {
                    let (_rec, pages) = self.store.get_metadata(event.file);
                    self.cache.insert_demand(event.file);
                    self.cfg.latency.miss(pages)
                }
            }
        };
        let completion = start + service;
        self.free_at_us = completion;
        self.counters.busy_us += service;
        self.counters.demands += 1;
        let response = completion - now;
        self.stats.record(response);
        self.obs.demands.inc();
        self.obs.demand_service_us.record(service);
        self.obs.demand_response_us.record(response);

        // Ask the predictor for candidates (into the reusable buffer) and
        // queue them at low priority.
        self.predictor
            .on_access_into(trace, event, &mut self.candidates);
        for &file in self.candidates.iter().take(self.cfg.prefetch_limit) {
            if file != event.file && !self.cache.contains(file) {
                self.prefetch_q.push(PrefetchRequest {
                    file,
                    enqueued_at_us: completion,
                });
            }
        }
        if self.obs.prefetch_queue_depth.is_enabled() {
            self.obs
                .prefetch_queue_depth
                .set(self.prefetch_q.len() as i64);
            let dropped = self.prefetch_q.dropped;
            self.obs
                .prefetches_dropped
                .add(dropped - self.dropped_reported);
            self.dropped_reported = dropped;
        }
        response
    }

    /// Serve queued prefetches that can complete before `now` (idle gaps).
    fn drain_prefetches_until(&mut self, now: u64) {
        while !self.prefetch_q.is_empty() {
            let service = self.cfg.latency.prefetch();
            let start = self.free_at_us;
            if start + service > now {
                break; // would delay the incoming demand: leave it queued
            }
            // lint: allow(panic) the loop condition peeked a head element
            // and nothing pops between the peek and here
            let req = self.prefetch_q.pop().expect("non-empty");
            if !self.cache.contains(req.file) {
                let (_rec, _pages) = self.store.get_metadata(req.file);
                self.cache.insert_prefetch(req.file);
            }
            self.free_at_us = start + service;
            self.counters.busy_us += service;
            self.counters.prefetches_serviced += 1;
            self.obs.prefetches_serviced.inc();
            self.obs.prefetch_service_us.record(service);
        }
    }

    /// Response-time statistics so far.
    pub fn stats(&self) -> &LatencyStats {
        &self.stats
    }

    /// Aggregate counters (queue drops are folded in at read time).
    pub fn counters(&self) -> MdsCounters {
        let mut c = self.counters;
        c.prefetches_dropped = self.prefetch_q.dropped;
        c
    }

    /// Cache counters (hit ratio, accuracy).
    pub fn cache_stats(&self) -> farmer_prefetch::CacheStats {
        self.cache.stats()
    }

    /// Store I/O counters.
    pub fn store_stats(&self) -> farmer_store::IoStats {
        self.store.stats()
    }

    /// Predictor state size (Table 4 accounting).
    pub fn predictor_memory(&self) -> usize {
        self.predictor.memory_bytes()
    }

    /// Predictor display name.
    pub fn predictor_name(&self) -> String {
        self.predictor.name().to_string()
    }

    /// Swap an externally mined correlation source into the predictor
    /// ([`farmer_prefetch::Predictor::refresh_source`]). Returns `false`
    /// if the installed predictor mines internally and cannot serve
    /// external state. This is the online-replay hook: the MDS keeps
    /// serving while its prediction model is refreshed mid-run.
    pub fn refresh_predictor(
        &mut self,
        source: Box<dyn farmer_core::CorrelationSource + Send>,
        as_of_events: u64,
    ) -> bool {
        self.predictor.refresh_source(source, as_of_events)
    }

    /// Cold-restart the server, as a crash + process replacement would:
    /// the metadata cache empties, queued prefetches are lost, and any
    /// in-flight backlog dies with the process (the replacement starts
    /// idle). Durable state survives — the metadata store, the running
    /// latency/hit statistics (they describe the *experiment*, which
    /// spans the restart), and the installed predictor, which the caller
    /// re-primes via [`MdsServer::refresh_predictor`] from whatever its
    /// mining tier recovered (see `farmer-stream::durable`). Recovery
    /// *time* is the mining tier's to report; this transition is
    /// instantaneous in simulated time so the post-restart hit-ratio dip
    /// measures cache loss alone.
    pub fn restart_cold(&mut self) {
        self.cache.clear();
        while self.prefetch_q.pop().is_some() {}
        self.free_at_us = 0;
        self.obs.prefetch_queue_depth.set(0);
        self.obs.restarts.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_prefetch::baselines::LruOnly;
    use farmer_prefetch::FpaPredictor;
    use farmer_trace::WorkloadSpec;

    fn small_trace() -> Trace {
        WorkloadSpec::hp().scaled(0.02).generate()
    }

    #[test]
    fn demands_always_get_responses() {
        let trace = small_trace();
        let mut mds = MdsServer::new(&trace, Box::new(LruOnly), MdsConfig::default());
        for e in trace.events.iter().filter(|e| e.op.is_metadata_demand()) {
            let r = mds.demand(&trace, e);
            assert!(r >= MdsConfig::default().latency.cache_hit_us);
        }
        assert_eq!(mds.counters().demands, mds.stats().count());
        assert_eq!(mds.counters().prefetches_serviced, 0);
    }

    #[test]
    fn miss_costs_more_than_hit() {
        let trace = small_trace();
        let mut mds = MdsServer::new(&trace, Box::new(LruOnly), MdsConfig::default());
        let e = &trace.events[0];
        let first = mds.demand(&trace, e); // cold miss
        let mut e2 = *e;
        e2.timestamp_us = e.timestamp_us + 1_000_000; // after server idle
        let second = mds.demand(&trace, &e2); // warm hit
        assert!(first > second, "miss {first} should exceed hit {second}");
    }

    #[test]
    fn prefetches_happen_in_idle_gaps_only() {
        let trace = small_trace();
        let mut mds = MdsServer::new(
            &trace,
            Box::new(FpaPredictor::for_trace(&trace)),
            MdsConfig::default(),
        );
        for e in trace.events.iter().filter(|e| e.op.is_metadata_demand()) {
            mds.demand(&trace, e);
        }
        let c = mds.counters();
        assert!(
            c.prefetches_serviced > 0,
            "idle gaps should service prefetches"
        );
        // Utilization sanity: busy time can't exceed the simulated horizon
        // plus one final service.
        let horizon = trace.events.last().unwrap().timestamp_us;
        assert!(c.busy_us <= horizon + 10_000);
    }

    #[test]
    fn back_to_back_arrivals_queue_up() {
        // Two demands at the same instant: the second's response includes
        // the first's service time.
        let trace = small_trace();
        let mut mds = MdsServer::new(&trace, Box::new(LruOnly), MdsConfig::default());
        let mut e1 = trace.events[0];
        let mut e2 = trace.events[1];
        e1.timestamp_us = 1000;
        e2.timestamp_us = 1000;
        let r1 = mds.demand(&trace, &e1);
        let r2 = mds.demand(&trace, &e2);
        assert!(r2 >= r1, "queued request must wait: {r2} < {r1}");
    }

    #[test]
    fn store_preloaded_with_namespace() {
        let trace = small_trace();
        let mds = MdsServer::new(&trace, Box::new(LruOnly), MdsConfig::default());
        assert_eq!(
            mds.store_stats().updates as usize,
            trace.num_files(),
            "every namespace file must be loaded"
        );
    }
}

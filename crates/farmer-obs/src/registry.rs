//! The hierarchical metric [`Registry`] and its ordered [`ObsReport`]
//! snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::{Counter, Gauge, HistSnapshot, Histogram};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A hierarchical name→metric map handing out shared metric handles.
///
/// * [`Registry::enabled`] — handles are live; recording costs relaxed
///   atomics.
/// * [`Registry::disabled`] (also `Default`) — every handle is a no-op and
///   registration allocates nothing; instrumented code pays one branch per
///   record. The `mine_throughput` bench gates this claim in CI.
///
/// Registration is idempotent: asking for the same name again returns a
/// handle to the same cell (and panics if the name is already registered
/// as a different metric kind — a naming bug worth failing loudly on).
/// Cloning a registry shares the underlying map; [`Registry::scope`]
/// derives a child registry that prefixes every name with `prefix.`.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
    prefix: String,
}

impl Registry {
    /// A live registry.
    pub fn enabled() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
            prefix: String::new(),
        }
    }

    /// A disabled registry: all handles are no-ops.
    pub fn disabled() -> Registry {
        Registry::default()
    }

    /// `enabled`/`disabled` chosen at runtime (e.g. from an `--obs` flag).
    pub fn new(enabled: bool) -> Registry {
        if enabled {
            Registry::enabled()
        } else {
            Registry::disabled()
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A child registry whose metric names are prefixed with `prefix.`.
    pub fn scope(&self, prefix: &str) -> Registry {
        Registry {
            inner: self.inner.clone(),
            prefix: self.qualify(prefix),
        }
    }

    fn qualify(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        noop: impl FnOnce() -> T,
        live: impl FnOnce() -> Metric,
        unwrap: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let Some(inner) = &self.inner else {
            return noop();
        };
        let full = self.qualify(name);
        // lint: allow(panic) a poisoned metrics map means a registrant
        // panicked mid-insert; metrics cannot be trusted after that
        let mut map = inner.metrics.lock().expect("obs registry poisoned");
        let metric = map.entry(full.clone()).or_insert_with(live);
        unwrap(metric).unwrap_or_else(|| {
            // lint: allow(panic) registering one name as two different
            // metric kinds is a programming error caught at startup
            panic!(
                "obs metric {full:?} already registered as a {}",
                metric.kind()
            )
        })
    }

    /// The counter named `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.register(
            name,
            Counter::noop,
            || Metric::Counter(Counter::live()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name` (registered on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.register(
            name,
            Gauge::noop,
            || Metric::Gauge(Gauge::live()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name` (registered on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.register(
            name,
            Histogram::noop,
            || Metric::Histogram(Histogram::live()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// An ordered point-in-time report of every registered metric (empty
    /// for a disabled registry). Entries are sorted by name, so two
    /// reports — or their text/JSON renderings — diff cleanly.
    pub fn snapshot(&self) -> ObsReport {
        let mut entries = Vec::new();
        if let Some(inner) = &self.inner {
            // lint: allow(panic) same poisoning policy as register()
            let map = inner.metrics.lock().expect("obs registry poisoned");
            for (name, metric) in map.iter() {
                let value = match metric {
                    Metric::Counter(c) => ObsValue::Counter(c.get()),
                    Metric::Gauge(g) => ObsValue::Gauge(g.get()),
                    Metric::Histogram(h) => ObsValue::Histogram(Box::new(h.snapshot())),
                };
                entries.push(ObsEntry {
                    name: name.clone(),
                    value,
                });
            }
        }
        ObsReport { entries }
    }
}

/// One metric's value in an [`ObsReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum ObsValue {
    /// A monotone counter's current total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(i64),
    /// A histogram's full state (boxed: a [`HistSnapshot`] is ~0.5 KiB of
    /// buckets, which would otherwise dominate every entry's size).
    Histogram(Box<HistSnapshot>),
}

/// A named metric value.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEntry {
    /// Dot-separated metric path (`stream.events`, `mds.demand_us`).
    pub name: String,
    /// The metric's value at snapshot time.
    pub value: ObsValue,
}

/// An ordered (name-sorted) snapshot of a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// All metrics, sorted by name.
    pub entries: Vec<ObsEntry>,
}

impl ObsReport {
    /// The value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&ObsValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// The counter `name`'s total, if it is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            ObsValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`'s value, if it is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            ObsValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`'s snapshot, if it is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match self.get(name)? {
            ObsValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Activity between two snapshots of the same registry: counters and
    /// histograms subtract (saturating), gauges keep their latest value.
    /// Metrics registered after `earlier` was taken appear as-is.
    pub fn delta(&self, earlier: &ObsReport) -> ObsReport {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let value = match (&e.value, earlier.get(&e.name)) {
                    (ObsValue::Counter(v), Some(ObsValue::Counter(p))) => {
                        ObsValue::Counter(v.saturating_sub(*p))
                    }
                    (ObsValue::Histogram(h), Some(ObsValue::Histogram(p))) => {
                        ObsValue::Histogram(Box::new(h.delta(p)))
                    }
                    (v, _) => v.clone(),
                };
                ObsEntry {
                    name: e.name.clone(),
                    value,
                }
            })
            .collect();
        ObsReport { entries }
    }

    /// Render as aligned text, one metric per line — stable ordering, so
    /// two renders diff cleanly:
    ///
    /// ```text
    /// mds.demand_us      count=1200 mean=212.4 p50=256 p90=512 p99=1024 max=1891
    /// stream.events      9000
    /// ```
    pub fn render(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            let _ = write!(out, "{:width$}  ", e.name);
            match &e.value {
                ObsValue::Counter(v) => {
                    let _ = writeln!(out, "{v}");
                }
                ObsValue::Gauge(v) => {
                    let _ = writeln!(out, "{v}");
                }
                ObsValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "count={} mean={:.1} p50={} p90={} p99={} max={}",
                        h.count,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                        h.max,
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noops() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().entries.is_empty());
        assert!(!reg.scope("sub").histogram("h").is_enabled());
    }

    #[test]
    fn same_name_shares_the_cell() {
        let reg = Registry::enabled();
        reg.counter("hits").inc();
        reg.counter("hits").add(2);
        assert_eq!(reg.snapshot().counter("hits"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_conflict_panics() {
        let reg = Registry::enabled();
        reg.counter("x").inc();
        let _ = reg.histogram("x");
    }

    #[test]
    fn scopes_prefix_names() {
        let reg = Registry::enabled();
        let mds = reg.scope("mds");
        mds.counter("demands").inc();
        mds.scope("queue").gauge("depth").set(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mds.demands"), Some(1));
        assert_eq!(snap.gauge("mds.queue.depth"), Some(4));
        assert!(snap.get("demands").is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_diffable() {
        let reg = Registry::enabled();
        reg.counter("b.count").add(10);
        reg.counter("a.count").add(1);
        reg.histogram("c.lat_us").record(100);
        reg.gauge("d.depth").set(7);
        let first = reg.snapshot();
        let names: Vec<&str> = first.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.count", "b.count", "c.lat_us", "d.depth"]);

        reg.counter("b.count").add(5);
        reg.histogram("c.lat_us").record(200);
        reg.gauge("d.depth").set(2);
        let second = reg.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.counter("b.count"), Some(5));
        assert_eq!(d.counter("a.count"), Some(0));
        assert_eq!(d.histogram("c.lat_us").unwrap().count, 1);
        assert_eq!(d.gauge("d.depth"), Some(2), "gauges keep the latest value");
    }

    #[test]
    fn render_is_stable_and_complete() {
        let reg = Registry::enabled();
        reg.counter("stream.events").add(9000);
        reg.histogram("mds.demand_us").record(300);
        let text = reg.snapshot().render();
        assert!(text.contains("stream.events"));
        assert!(text.contains("9000"));
        assert!(text.contains("p99="));
        assert_eq!(text, reg.snapshot().render());
    }

    #[test]
    fn concurrent_registration_and_recording() {
        let reg = Registry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.counter("shared").inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("shared"), Some(4000));
    }
}

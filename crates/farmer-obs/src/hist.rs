//! Log2-bucketed latency histograms: an atomic recorder ([`Histogram`]) and
//! its plain, mergeable snapshot ([`HistSnapshot`]).
//!
//! Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 additionally absorbs zero),
//! so 64 buckets span the whole `u64` range with ≤ 2× relative quantile
//! error — the same scheme production metric systems use, and the direct
//! generalization of the 36-bucket histogram `farmer-mds::latency` carried
//! before this crate existed. Recording touches a fixed handful of relaxed
//! atomics; there is no allocation, locking, or resizing anywhere on the
//! record path.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of buckets — one per power of two of `u64`.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `floor(log2(max(v, 1)))`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` (bucket 0 starts at
/// zero; the last bucket's upper bound saturates at `u64::MAX`).
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < BUCKETS);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

/// A plain (non-atomic) histogram state: recordable, mergeable, diffable.
///
/// This is both the snapshot type of the atomic [`Histogram`] and a
/// standalone single-threaded accumulator (`farmer-mds`'s latency
/// accounting records straight into one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values, so means stay exact even though bucket
    /// bounds quantize the quantiles. Wraps on overflow (like the atomic
    /// recorder) — unreachable for latency-scale values, and wrapping
    /// keeps merge/delta an exact algebra on every field.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        HistSnapshot::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound of
    /// the bucket holding the `ceil(count·q)`-th smallest sample, clamped
    /// to the observed maximum. Returns 0 when empty.
    ///
    /// The clamp keeps the estimate inside the observed range (and makes
    /// `quantile(1.0) == max` exact); the bucket bound keeps the relative
    /// error below 2×.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merge another snapshot into this one. Associative and commutative:
    /// shard histograms merged in any grouping yield the same totals.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Bucket-wise difference `self - earlier` — the activity between two
    /// snapshots of the same histogram, the basis of per-phase quantiles.
    ///
    /// Subtraction saturates at zero so a mis-ordered pair yields an empty
    /// delta instead of underflowing. `min`/`max` are not recoverable from
    /// a difference, so the delta conservatively keeps `self`'s bounds.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut d = HistSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: [0; BUCKETS],
        };
        for (i, b) in d.buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        if d.count == 0 {
            d.sum = 0;
            d.min = 0;
            d.max = 0;
        }
        d
    }
}

#[derive(Debug)]
pub(crate) struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// A shared, thread-safe histogram handle.
///
/// Cloning shares the underlying cell (miner shards all record into the
/// same histogram). The default/no-op handle ([`Histogram::noop`]) makes
/// [`Histogram::record`] a single branch — the disabled-observability mode
/// whose cost the bench suite measures.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCell>>);

impl Histogram {
    /// A live histogram (normally obtained via `Registry::histogram`).
    pub fn live() -> Self {
        Histogram(Some(Arc::new(HistCell::default())))
    }

    /// A no-op handle: `record` does nothing, `snapshot` is empty.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one value (relaxed atomics; ~2 ns when live, one branch
    /// when no-op).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(c) = &self.0 {
            // ord: each field is an independent commutative accumulator;
            // cross-field coherence is explicitly not promised (see
            // `snapshot`), so nothing needs ordering.
            c.count.fetch_add(1, Relaxed);
            c.sum.fetch_add(v, Relaxed); // ord: commutative accumulator
            c.min.fetch_min(v, Relaxed); // ord: order-insensitive extremum
            c.max.fetch_max(v, Relaxed); // ord: order-insensitive extremum
            c.buckets[bucket_index(v)].fetch_add(1, Relaxed); // ord: commutative accumulator
        }
    }

    /// Start an RAII span recording elapsed wall-clock nanoseconds into
    /// this histogram on drop (no clock read when the handle is no-op).
    pub fn span(&self) -> crate::Span {
        crate::Span::start(self)
    }

    /// A point-in-time copy. Concurrent recorders may tear *across* fields
    /// (count vs. buckets can disagree by in-flight records) but every
    /// individual field is a consistent relaxed load — fine for metrics,
    /// and exact once recorders quiesce.
    pub fn snapshot(&self) -> HistSnapshot {
        match &self.0 {
            None => HistSnapshot::default(),
            Some(c) => {
                // ord: the doc contract above allows tearing across
                // fields; per-field Relaxed loads are all that is needed.
                let count = c.count.load(Relaxed);
                let mut s = HistSnapshot {
                    count,
                    sum: c.sum.load(Relaxed), // ord: advisory snapshot
                    min: if count == 0 { 0 } else { c.min.load(Relaxed) }, // ord: advisory snapshot
                    max: c.max.load(Relaxed), // ord: advisory snapshot
                    buckets: [0; BUCKETS],
                };
                for (b, a) in s.buckets.iter_mut().zip(c.buckets.iter()) {
                    *b = a.load(Relaxed); // ord: advisory snapshot
                }
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bounds_cover_the_line() {
        let (lo, hi) = bucket_bounds(0);
        assert_eq!((lo, hi), (0, 2));
        let (lo, hi) = bucket_bounds(63);
        assert_eq!(lo, 1u64 << 63);
        assert_eq!(hi, u64::MAX);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1, bucket_bounds(i + 1).0);
        }
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = HistSnapshot::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1100);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 220.0).abs() < 1e-9);
        // p50 = 3rd smallest (30) → bucket [16,32) → upper bound 32.
        assert_eq!(h.quantile(0.5), 32);
        // p100 clamps to the observed max exactly.
        assert_eq!(h.quantile(1.0), 1000);
        // Quantiles never exceed max nor undershoot min's bucket.
        assert!(h.quantile(0.0) >= 10);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = HistSnapshot::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
        assert_eq!(Histogram::noop().snapshot(), h);
    }

    #[test]
    fn zero_and_huge_values_are_representable() {
        let mut h = HistSnapshot::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[63], 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_adds_and_keeps_bounds() {
        let mut a = HistSnapshot::new();
        a.record(5);
        let mut b = HistSnapshot::new();
        b.record(500);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 500);
        let empty = HistSnapshot::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before, "merging empty is identity");
    }

    #[test]
    fn delta_recovers_phase_activity() {
        let mut h = HistSnapshot::new();
        h.record(10);
        h.record(100);
        let mark = h.clone();
        h.record(1000);
        h.record(1000);
        let d = h.delta(&mark);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 2000);
        // Bucket bound 1024 clamps to the delta's max (1000).
        assert_eq!(d.quantile(0.5), 1000);
        // Mis-ordered pair saturates to empty.
        let back = mark.delta(&h);
        assert!(back.is_empty());
        assert_eq!(back.max, 0);
    }

    #[test]
    fn atomic_histogram_matches_plain_under_threads() {
        let h = Histogram::live();
        let mut expect = HistSnapshot::new();
        for v in 0..1000u64 {
            expect.record(v * 7);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in (t..1000u64).step_by(4) {
                        h.record(v * 7);
                    }
                });
            }
        });
        assert_eq!(h.snapshot(), expect);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let h = Histogram::live();
        {
            let _s = h.span();
            std::hint::black_box(());
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        let noop = Histogram::noop();
        {
            let _s = noop.span();
        }
        assert!(noop.snapshot().is_empty());
    }
}

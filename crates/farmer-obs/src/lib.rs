//! # farmer-obs — the workspace's observability substrate
//!
//! The paper's evaluation argues from *distributions* (response-time curves,
//! hit-ratio trajectories, space overhead), so the repro needs more than
//! means and ad-hoc counters: regressions in tail latency, eviction churn,
//! or snapshot-build cost must be visible between PRs. This crate provides
//! the measurement primitives every other crate instruments itself with:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars, safe to bump from
//!   any thread (miner shards share one counter and the sum just works).
//! * [`Histogram`] — a fixed-size log2-bucketed latency histogram:
//!   recording is a handful of relaxed atomic adds (~2 ns), snapshots are
//!   mergeable and diffable, and quantiles (p50/p90/p99/max) come from the
//!   bucket bounds. [`HistSnapshot`] is the plain (non-atomic) counterpart
//!   used for single-threaded accounting and per-phase deltas.
//! * [`Span`] — an RAII wall-clock timer that records elapsed nanoseconds
//!   into a histogram on drop.
//! * [`Registry`] — a hierarchical name→metric map. `Registry::enabled()`
//!   hands out live handles; `Registry::disabled()` hands out no-op handles
//!   so instrumented code paths cost one branch when observability is off —
//!   an overhead that `mine_throughput`'s instrumented-vs-baseline leg
//!   *measures* rather than assumes. [`Registry::snapshot`] produces an
//!   ordered, diff-able [`ObsReport`] with a text renderer; the ordered-JSON
//!   rendering lives in `farmer-bench::format` (this crate stays
//!   dependency-free).
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated paths, `subsystem.metric[_unit]`:
//! `stream.events`, `mds.demand_us`, `online.refresh_ns`. Unit suffixes are
//! part of the contract — `_us` for *simulated* microseconds (latency-model
//! output), `_ns` for *wall-clock* nanoseconds (span-measured real time).
//! Use [`Registry::scope`] to build the subsystem prefix once and hand the
//! scoped registry to the component being instrumented.
//!
//! ## Adding a metric
//!
//! ```
//! use farmer_obs::Registry;
//!
//! let reg = Registry::enabled();
//! let scope = reg.scope("demo");
//! let events = scope.counter("events");
//! let lat = scope.histogram("service_us");
//! events.inc();
//! lat.record(120);
//! {
//!     let _span = scope.histogram("build_ns").span(); // records on drop
//! }
//! let report = reg.snapshot();
//! assert_eq!(report.counter("demo.events"), Some(1));
//! println!("{}", report.render());
//! ```

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

mod hist;
mod metric;
mod registry;

pub use hist::{HistSnapshot, Histogram, BUCKETS};
pub use metric::{Counter, Gauge, Span};
pub use registry::{ObsEntry, ObsReport, ObsValue, Registry};

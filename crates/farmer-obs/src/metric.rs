//! Scalar metrics ([`Counter`], [`Gauge`]) and the RAII [`Span`] timer.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

use crate::Histogram;

/// A monotone event counter. Cloning shares the cell; all operations are
/// relaxed atomics, so any thread may bump it and the total just adds up.
/// The default/no-op handle makes every operation a single branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A live counter (normally obtained via `Registry::counter`).
    pub fn live() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A no-op handle.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed); // ord: independent counter, no payload to order
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        // ord: metrics are advisory snapshots; exactness across
        // threads is not part of the contract
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// A last-value-wins instantaneous measurement (queue depth, resident
/// bytes). Signed so derived values may legitimately dip below zero.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// A live gauge (normally obtained via `Registry::gauge`).
    pub fn live() -> Self {
        Gauge(Some(Arc::new(AtomicI64::new(0))))
    }

    /// A no-op handle.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(c) = &self.0 {
            c.store(v, Relaxed); // ord: last-value-wins gauge, no ordering contract
        }
    }

    /// Adjust the current value by `d` (use a negative delta to decrement).
    #[inline]
    pub fn adjust(&self, d: i64) {
        if let Some(c) = &self.0 {
            c.fetch_add(d, Relaxed); // ord: independent delta, no payload to order
        }
    }

    /// Keep the running maximum of `v` and the current value.
    #[inline]
    pub fn record_max(&self, v: i64) {
        if let Some(c) = &self.0 {
            c.fetch_max(v, Relaxed); // ord: running max is order-insensitive
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        // ord: advisory snapshot read, same policy as Counter::get
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// An RAII wall-clock timer: created from a [`Histogram`], records the
/// elapsed **nanoseconds** into it when dropped. When the histogram is a
/// no-op handle the span never reads the clock, so a disabled registry
/// pays one branch per span, not two `Instant` syscalls.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    hist: Histogram,
}

impl Span {
    /// Start timing into `hist` (no-op if `hist` is disabled).
    pub fn start(hist: &Histogram) -> Span {
        Span {
            start: hist.is_enabled().then(Instant::now),
            hist: hist.clone(),
        }
    }

    /// Stop early and record, consuming the span. Returns the elapsed
    /// nanoseconds (0 when disabled).
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        match self.start.take() {
            None => 0,
            Some(t0) => {
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.hist.record(ns);
                ns
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_shares() {
        let c = Counter::live();
        let c2 = c.clone();
        c.inc();
        c2.add(9);
        assert_eq!(c.get(), 10);
        assert!(c.is_enabled());
    }

    #[test]
    fn noop_counter_stays_zero() {
        let c = Counter::noop();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
    }

    #[test]
    fn gauge_sets_adjusts_and_maxes() {
        let g = Gauge::live();
        g.set(5);
        g.adjust(-2);
        assert_eq!(g.get(), 3);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        let n = Gauge::noop();
        n.set(42);
        assert_eq!(n.get(), 0);
    }

    #[test]
    fn finish_returns_elapsed_once() {
        let h = Histogram::live();
        let s = Span::start(&h);
        let _ns = s.finish(); // drop after finish must not double-record
        assert_eq!(h.snapshot().count, 1);
        let disabled = Span::start(&Histogram::noop());
        assert_eq!(disabled.finish(), 0);
    }

    #[test]
    fn counter_totals_across_threads() {
        let c = Counter::live();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}

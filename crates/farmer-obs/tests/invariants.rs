//! Property tests for the observability primitives: the histogram algebra
//! (record/merge associativity, delta inversion), quantile monotonicity and
//! bucket-bound correctness, and counter consistency under concurrent
//! recorders.

use farmer_obs::{Counter, HistSnapshot, Histogram};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistSnapshot {
    let mut h = HistSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Values spanning several buckets, including 0 and the top bucket.
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in values(), b in values(), c in values(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_of_splits_equals_record_of_concat(a in values(), b in values()) {
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let whole = hist_of(&concat);
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        prop_assert_eq!(whole, merged);
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_bounded(
        vals in proptest::collection::vec(0u64..=u64::MAX, 1..128),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let h = hist_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();

        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for &q in &qs {
            let est = h.quantile(q);
            prop_assert!(est >= prev, "quantile must be monotone in q");
            prev = est;

            // Bucket-bound correctness: the estimate brackets the true
            // rank-k sample — never below it, never above twice it (and
            // never outside the observed range).
            let k = ((vals.len() as f64 * q).ceil() as usize).clamp(1, vals.len());
            let truth = sorted[k - 1];
            prop_assert!(est >= truth, "q={q}: {est} < true sample {truth}");
            prop_assert!(est <= truth.saturating_mul(2).max(2), "q={q}: {est} > 2x {truth}");
            prop_assert!(est <= h.max && (est >= h.min || truth == h.min));
        }
        prop_assert_eq!(h.quantile(1.0), h.max, "p100 is exactly the max");
    }

    #[test]
    fn delta_inverts_merge(a in values(), b in values()) {
        let ha = hist_of(&a);
        let mut whole = ha.clone();
        whole.merge(&hist_of(&b));
        let d = whole.delta(&ha);
        let hb = hist_of(&b);
        // Buckets, count, and sum recover the second batch exactly
        // (min/max are conservative and not compared).
        prop_assert_eq!(d.count, hb.count);
        prop_assert_eq!(d.sum, hb.sum);
        prop_assert_eq!(d.buckets, hb.buckets);
    }

    #[test]
    fn atomic_histogram_agrees_with_plain(vals in values()) {
        let atomic = Histogram::live();
        for &v in &vals {
            atomic.record(v);
        }
        prop_assert_eq!(atomic.snapshot(), hist_of(&vals));
    }

    #[test]
    fn counters_are_exact_under_concurrent_recorders(
        per_thread in proptest::collection::vec(1u64..2000, 2..6),
    ) {
        let c = Counter::live();
        let h = Histogram::live();
        std::thread::scope(|s| {
            for &n in &per_thread {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..n {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        let total: u64 = per_thread.iter().sum();
        prop_assert_eq!(c.get(), total);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, total);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), total,
            "every record lands in exactly one bucket");
    }
}

//! Full metadata-server simulation: FPA vs Nexus vs LRU on one trace
//! family, with the paper's dual priority queues and the B+-tree store on
//! the miss path.
//!
//! ```text
//! cargo run --release --example mds_simulation            # HP by default
//! cargo run --release --example mds_simulation -- LLNL
//! cargo run --release --example mds_simulation -- RES 0.5   # half-size
//! ```

use farmer::prefetch::baselines::LruOnly;
use farmer::prelude::*;

fn main() {
    let family = std::env::args()
        .nth(1)
        .and_then(|s| TraceFamily::from_name(&s))
        .unwrap_or(TraceFamily::Hp);
    let scale = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    let trace = WorkloadSpec::for_family(family).scaled(scale).generate();
    println!(
        "replaying {} ({} events) through the MDS simulator\n",
        trace.label,
        trace.len()
    );

    let cfg = ReplayConfig::for_family(family);
    let runs: Vec<ReplayReport> = vec![
        replay(&trace, Box::new(LruOnly), cfg),
        replay(&trace, Box::new(NexusPredictor::paper_default()), cfg),
        replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg),
    ];

    for r in &runs {
        println!("{}", r.summary());
    }

    let lru = &runs[0];
    let fpa = &runs[2];
    println!(
        "\nFPA cuts average metadata latency by {:.0}% vs plain LRU \
         (p95: {:.2}ms -> {:.2}ms)",
        100.0 * (1.0 - fpa.avg_response_ms() / lru.avg_response_ms()),
        lru.latency.percentile_us(0.95) as f64 / 1000.0,
        fpa.latency.percentile_us(0.95) as f64 / 1000.0,
    );
    println!(
        "prefetch queue: {} serviced, {} dropped under load (demand requests always had priority)",
        fpa.counters.prefetches_serviced, fpa.counters.prefetches_dropped
    );
}

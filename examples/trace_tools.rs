//! Trace round-trip tooling: generate a synthetic trace, save it in the
//! text format, parse it back, and verify the mining results agree — the
//! path for plugging *real* traces into the pipeline.
//!
//! ```text
//! cargo run --release --example trace_tools -- /tmp/ins.trace
//! ```

use farmer::prelude::*;
use farmer::trace::parser;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/farmer-ins.trace".into());

    let original = WorkloadSpec::ins().scaled(0.2).generate();
    let text = parser::to_text(&original);
    std::fs::write(&path, &text).expect("write trace file");
    println!(
        "wrote {} ({} events, {:.1} KiB) to {path}",
        original.label,
        original.len(),
        text.len() as f64 / 1024.0
    );

    let parsed = parser::from_text(&std::fs::read_to_string(&path).expect("read back"))
        .expect("parse trace file");
    println!(
        "parsed back: {} events, {} files",
        parsed.len(),
        parsed.num_files()
    );

    // Mining either copy produces identical correlators.
    let cfg = FarmerConfig::pathless();
    let a = Farmer::mine_trace(&original, cfg.clone());
    let b = Farmer::mine_trace(&parsed, cfg);
    let mut checked = 0;
    for fid in 0..original.num_files() {
        let file = FileId::new(fid as u32);
        assert_eq!(
            a.correlators(file),
            b.correlators(file),
            "mismatch at {file}"
        );
        checked += 1;
    }
    println!("verified: correlator lists of all {checked} files identical after round-trip");
}

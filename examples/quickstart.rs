//! Quickstart: generate a trace, mine it, inspect correlations, prefetch.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use farmer::prelude::*;

fn main() {
    // 1. A synthetic HP-style trace (time-sharing server, full paths).
    let trace = WorkloadSpec::hp().scaled(0.2).generate();
    println!(
        "trace: {} ({} events, {} files)\n",
        trace.label,
        trace.len(),
        trace.num_files()
    );

    // 2. Mine it with the paper's default configuration
    //    (p = 0.7, max_strength = 0.4, IPA path handling).
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
    println!(
        "mined {} events -> {} graph nodes, {} edges, {:.1} KiB resident\n",
        farmer.observed(),
        farmer.graph().num_nodes(),
        farmer.graph().num_edges(),
        farmer.memory_bytes() as f64 / 1024.0
    );

    // 3. Inspect the Correlator List of a frequently accessed file.
    let hot = hottest_file(&trace);
    let list = farmer.correlators(hot);
    println!(
        "strongest correlations of {hot} ({}):",
        render_path(&trace, hot)
    );
    for c in list.top(5) {
        println!(
            "  -> {:<6} degree {:.3}   ({})",
            c.file.to_string(),
            c.degree,
            render_path(&trace, c.file)
        );
    }

    // 4. Use the model as a prefetcher and measure against plain LRU.
    let cfg = SimConfig::for_family(trace.family);
    let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
    let lru = simulate(&trace, &mut farmer::prefetch::baselines::LruOnly, cfg);
    println!(
        "\nprefetching: FPA hit {:.1}% (accuracy {:.1}%) vs plain LRU hit {:.1}%",
        100.0 * fpa.hit_ratio(),
        100.0 * fpa.prefetch_accuracy(),
        100.0 * lru.hit_ratio()
    );
}

fn hottest_file(trace: &Trace) -> FileId {
    let mut counts = vec![0u32; trace.num_files()];
    for e in &trace.events {
        counts[e.file.index()] += 1;
    }
    // Prefer a hot file that has successors mined (skip pure-noise tools).
    FileId::new(
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as u32)
            .unwrap_or(0),
    )
}

fn render_path(trace: &Trace, file: FileId) -> String {
    trace
        .path_of(file)
        .map(|p| trace.paths.render(p))
        .unwrap_or_else(|| "<no path>".into())
}

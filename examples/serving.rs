//! The serving tier end to end: many writer threads feeding the ingest
//! ring, the always-running miner publishing epoch-swapped snapshots, and
//! reader threads serving top-k queries wait-free while ingestion runs.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! Two writers split an HP-style trace through cloned lock-free
//! [`IngestHandle`](farmer::serve::IngestHandle)s while four readers hammer
//! `top_k_into` against whatever snapshot is currently published — no lock
//! anywhere on either hot path. Watch the epoch climb as the tier
//! publishes mid-stream, then the graceful shutdown: the ring drains, a
//! final snapshot is published, and the returned stats account for every
//! event exactly.

use std::sync::atomic::{AtomicBool, Ordering};

use farmer::prelude::*;

fn main() {
    let trace = WorkloadSpec::hp().scaled(0.1).generate();
    println!(
        "== serving tier: {} ({} events) ==",
        trace.label,
        trace.len()
    );

    let cfg = ServeConfig::default()
        .with_shards(4)
        .with_publish_every(2_048);
    let serve = FarmerServe::spawn(cfg);

    // A handful of hot files for the readers to query.
    let hot: Vec<FileId> = trace.events.iter().take(64).map(|e| e.file).collect();

    // Readers are registered up front (each gets its own wait-free view of
    // the snapshot cell) and moved into their threads.
    let readers: Vec<_> = (0..4).map(|_| serve.reader()).collect();
    let writers = 2;
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writers: split the trace round-robin, each through its own
        // cloned lock-free handle.
        let writer_threads: Vec<_> = (0..writers)
            .map(|w| {
                let mut handle = serve.handle();
                let trace = &trace;
                s.spawn(move || {
                    for e in trace.events.iter().skip(w).step_by(writers) {
                        handle.ingest_event(trace, e);
                    }
                })
            })
            .collect();

        // Readers: serve top-k queries against the freshest published
        // snapshot until the writers finish, reporting how many epochs
        // they watched go by.
        let reader_threads: Vec<_> = readers
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                let hot = &hot;
                let done = &done;
                s.spawn(move || {
                    let mut buf = Vec::new();
                    let (mut queries, mut swaps) = (0u64, 0u64);
                    let mut epoch = r.epoch_seen();
                    while !done.load(Ordering::Relaxed) {
                        for &f in hot {
                            r.top_k_into(f, 4, 0.0, &mut buf);
                            queries += 1;
                        }
                        let now = r.epoch_seen();
                        if now != epoch {
                            swaps += 1;
                            epoch = now;
                        }
                    }
                    (i, queries, swaps)
                })
            })
            .collect();

        // Wait for ingestion to be fully mined and published, then let the
        // readers wind down.
        for t in writer_threads {
            t.join().expect("writer panicked");
        }
        serve.flush();
        done.store(true, Ordering::Relaxed);
        for t in reader_threads {
            let (i, queries, swaps) = t.join().expect("reader panicked");
            println!("reader {i}: {queries:>8} queries, saw {swaps} snapshot swaps");
        }
    });

    // Query the final published state through one more reader.
    let mut r = serve.reader();
    let snap = r.snapshot();
    println!(
        "\npublished snapshot: epoch {}  events {}  lists {}",
        r.epoch_seen(),
        snap.events,
        snap.num_lists()
    );
    let mut heads: Vec<_> = snap
        .table
        .iter()
        .filter_map(|l| l.head().map(|c| (l.owner, c)))
        .collect();
    heads.sort_by(|a, b| b.1.degree.total_cmp(&a.1.degree));
    println!("strongest served correlations:");
    for (owner, c) in heads.iter().take(5) {
        println!("  {owner} -> {}  (degree {:.3})", c.file, c.degree);
    }

    // Graceful shutdown: drain the ring, publish the final cut, account
    // for every event. Readers (like `r`) outlive the tier — they keep
    // serving the last published snapshot.
    let stats = serve.shutdown();
    println!(
        "\nshutdown: events={} forgets={} publishes={} final_epoch={}",
        stats.events, stats.forgets, stats.publishes, stats.final_epoch
    );
    assert_eq!(
        stats.events,
        trace.len() as u64,
        "every event accounted for"
    );
    let after = r.strongest(hot[0], 0.0);
    println!(
        "reader survives the tier: strongest({}) = {:?}",
        hot[0],
        after.map(|c| c.file)
    );
}

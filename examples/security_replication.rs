//! FARMER-enabled security and reliability (§4.3): propagate an access
//! rule along mined correlations, and group correlated files into replica
//! groups with atomic backup/recovery.
//!
//! ```text
//! cargo run --release --example security_replication
//! ```

use farmer::apps::security::{AccessRule, PropagationConfig, RuleAction, SecurityPolicy};
use farmer::apps::{ReplicaManager, ReplicaPlan};
use farmer::prelude::*;

fn main() {
    let trace = WorkloadSpec::hp().scaled(0.2).generate();
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
    println!("mined {} ({} files)\n", trace.label, trace.num_files());

    // --- Security: deny one sensitive file; the rule follows correlations.
    // Pick a file that actually has strong correlators so propagation shows.
    let sensitive = (0..trace.num_files() as u32)
        .map(FileId::new)
        .max_by_key(|f| farmer.correlators(*f).len())
        .expect("non-empty namespace");
    let rule = AccessRule {
        file: sensitive,
        subject: None,
        action: RuleAction::Deny,
    };
    let policy = SecurityPolicy::compile(&farmer, vec![rule], PropagationConfig::default());
    let (denied, _, allowed) = policy.enforce(trace.events.iter());
    println!(
        "security: a single deny rule on {sensitive} auto-covers {} correlated files;\n\
         enforcement over the trace: {denied} denied / {allowed} allowed",
        policy.covered_files()
    );

    // --- Reliability: correlation-aware replica groups.
    let plan = ReplicaPlan::plan(&farmer, trace.num_files(), 0.4, 8);
    println!(
        "\nreplication: {} replica groups planned",
        plan.num_groups()
    );
    let mut mgr = ReplicaManager::new(plan, trace.num_files());

    // Write to a grouped file's whole neighbourhood, then crash mid-backup.
    let victim = (0..trace.num_files() as u32)
        .map(FileId::new)
        .find(|f| mgr.plan().group_of(*f).is_some())
        .expect("some grouped file");
    let group = mgr.plan().group_of(victim).unwrap();
    let members = mgr.plan().members(group).to_vec();
    for f in &members {
        mgr.write(*f);
    }
    let survived = mgr.backup(victim, Some(1));
    println!(
        "atomic group backup with a crash injected after 1 copy: {}",
        if survived {
            "committed (bug!)"
        } else {
            "aborted cleanly — no torn group"
        }
    );
    assert!(!survived);

    // Clean backup, then lose the primaries and recover the whole group.
    mgr.backup(victim, None);
    for f in &members {
        mgr.write(*f); // post-backup writes that the failure will destroy
    }
    mgr.recover(victim);
    let consistent = members
        .iter()
        .all(|f| mgr.primary_version(*f) == mgr.primary_version(members[0]));
    println!(
        "group recovery restored {} files to one consistent version: {}",
        members.len(),
        consistent
    );
    assert!(consistent);
}

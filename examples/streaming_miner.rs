//! The streaming subsystem end to end: an unbounded request stream mined
//! online by sharded workers under a hard memory budget, with consistent
//! snapshots refreshing a prefetcher mid-flight.
//!
//! ```text
//! cargo run --release --example streaming_miner
//! ```
//!
//! The demo routes several laps of an HP-style trace through a 4-shard
//! [`ShardedMiner`], takes a snapshot each lap (watch the state stay
//! bounded while events grow without bound), then shows the payoff:
//! a cache simulation where the FPA predictor serves from the streamed
//! snapshot beats the same predictor starting cold.

use farmer::prelude::*;

fn main() {
    let trace = WorkloadSpec::hp().scaled(0.1).generate();
    let laps = 5;
    println!("== streaming ingestion: {laps} laps of {} ==", trace.label);

    let cfg = StreamConfig::default().with_shards(4).with_node_cap(1024);
    let cap = cfg.node_cap * cfg.num_shards;
    let mut miner = ShardedMiner::spawn(cfg);

    let mut stream = trace.stream();
    let mut last: Option<StreamSnapshot> = None;
    for lap in 1..=laps {
        for _ in 0..trace.len() {
            let e = stream.next().expect("stream is unbounded");
            miner.route_event(&trace, &e);
        }
        let snap = miner.snapshot();
        println!(
            "lap {lap}: events={:>7}  tracked={:>5} (cap {cap})  lists={:>5}  \
             evictions={:>6}  state={:.1} MiB",
            snap.events,
            snap.tracked_files,
            snap.num_lists(),
            snap.evictions,
            snap.state_bytes as f64 / (1024.0 * 1024.0),
        );
        assert!(snap.tracked_files <= cap, "memory budget violated");
        last = Some(snap);
    }
    let snap = last.expect("at least one lap ran");

    // Strongest mined correlations, resolved to paths where known.
    println!("\n== strongest streamed correlations ==");
    let mut heads: Vec<_> = snap
        .table
        .iter()
        .filter_map(|l| l.head().map(|c| (l.owner, c)))
        .collect();
    heads.sort_by(|a, b| b.1.degree.total_cmp(&a.1.degree));
    let render = |f: FileId| {
        trace
            .path_of(f)
            .map(|p| trace.paths.render(p))
            .unwrap_or_else(|| f.to_string())
    };
    for (owner, c) in heads.iter().take(5) {
        println!(
            "  {} -> {}  (degree {:.3})",
            render(*owner),
            render(c.file),
            c.degree
        );
    }

    // The payoff: refresh FPA from the stream snapshot (handed over
    // directly — a snapshot *is* a CorrelationSource, no table copy) and
    // compare a cache simulation against the same predictor starting cold.
    println!("\n== prefetch with online refresh ==");
    let sim_cfg = SimConfig::for_family(trace.family);
    let mut cold = FpaPredictor::for_trace(&trace);
    let cold_report = simulate(&trace, &mut cold, sim_cfg);

    let (snap_lists, snap_events) = (snap.num_lists(), snap.events);
    let mut warmed = FpaPredictor::for_trace(&trace);
    warmed.refresh(snap, snap_events);
    let warm_report = simulate(&trace, &mut warmed, sim_cfg);

    println!(
        "  cold FPA (self-mining)      : hit ratio {:5.1}%",
        100.0 * cold_report.hit_ratio()
    );
    println!(
        "  FPA @ streamed snapshot     : hit ratio {:5.1}%",
        100.0 * warm_report.hit_ratio()
    );
    println!(
        "\nThe snapshot-served predictor starts with {} lists mined from {} \
         streamed events,\nwhile the cold predictor must re-learn them during \
         the run.",
        snap_lists, snap_events
    );
}

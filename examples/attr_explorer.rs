//! Explore which semantic-attribute combinations help on a given trace —
//! an interactive version of the paper's Table 5.
//!
//! ```text
//! cargo run --release --example attr_explorer              # HP
//! cargo run --release --example attr_explorer -- INS 0.5
//! ```

use farmer::prelude::*;

fn main() {
    let family = std::env::args()
        .nth(1)
        .and_then(|s| TraceFamily::from_name(&s))
        .unwrap_or(TraceFamily::Hp);
    let scale = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    let trace = WorkloadSpec::for_family(family).scaled(scale).generate();
    let base = if family.has_paths() {
        AttrCombo::HP_BASE
    } else {
        AttrCombo::INS_BASE
    };
    println!(
        "attribute sweep on {} ({} events); base attributes: {:?}\n",
        trace.label,
        trace.len(),
        base.map(|k| k.label())
    );

    let sim_cfg = SimConfig::for_family(family);
    let mut results: Vec<(String, f64, f64)> = AttrCombo::sweep(&base)
        .into_iter()
        .map(|combo| {
            let cfg = if family.has_paths() {
                FarmerConfig::default().with_combo(combo)
            } else {
                FarmerConfig::pathless().with_combo(combo)
            };
            let mut fpa = FpaPredictor::new(cfg);
            let r = simulate(&trace, &mut fpa, sim_cfg);
            (combo.to_string(), r.hit_ratio(), r.prefetch_accuracy())
        })
        .collect();

    results.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("{:<36} {:>9} {:>9}", "combination", "hit", "accuracy");
    for (combo, hit, acc) in &results {
        println!("{combo:<36} {:>8.2}% {:>8.2}%", 100.0 * hit, 100.0 * acc);
    }
    let spread = 100.0 * (results.first().unwrap().1 - results.last().unwrap().1);
    println!(
        "\nspread across combinations: {spread:.1} points (paper reports 0.1-13 points);\n\
         the winning combination is the one to configure in FarmerConfig::combo."
    );
}

//! The paper's motivating scenario (§2): "when a user executes gcc to
//! compile a set of source files … files are often generated in the same
//! access sequence and eventually deposited to the same directory."
//!
//! This example hand-builds that workload — two users compiling their own
//! projects concurrently, interleaved by the scheduler — and shows why the
//! combination of signals matters: pure sequence mining confuses the two
//! users' files, while FARMER's semantic distance separates them.
//!
//! ```text
//! cargo run --release --example compile_workload
//! ```

use farmer::core::{similarity, PathMode};
use farmer::prelude::*;
use farmer::trace::{DevId, HostId, ProcId, UserId};

fn main() {
    // --- Build a tiny namespace: two users, one project each, shared gcc.
    let mut trace = Trace::empty(TraceFamily::Hp);
    let mut add = |path: &str| {
        let p = trace.paths.parse(path);
        trace.files.push(farmer::trace::FileMeta {
            path: Some(p),
            dev: DevId::new(0),
            size: 8192,
            read_only: true,
        });
        FileId::new((trace.files.len() - 1) as u32)
    };
    let gcc = add("/usr/bin/gcc");
    let alice = [
        add("/home/alice/proj/main.c"),
        add("/home/alice/proj/util.c"),
        add("/home/alice/proj/a.out"),
    ];
    let bob = [
        add("/home/bob/thesis/sim.c"),
        add("/home/bob/thesis/plot.c"),
        add("/home/bob/thesis/sim.out"),
    ];

    // --- Interleave 40 compile runs of each user (as an OS scheduler would).
    let mut seq = 0u64;
    let push = |trace: &mut Trace, file: FileId, uid: u32, pid: u32, seq: &mut u64| {
        let mut e = TraceEvent::synthetic(
            *seq,
            file,
            UserId::new(uid),
            ProcId::new(pid),
            HostId::new(uid),
        );
        e.timestamp_us = *seq * 100;
        trace.events.push(e);
        *seq += 1;
    };
    let mut pid = 1u32;
    for round in 0..40 {
        // Both compiles run "simultaneously": steps interleave 1:1.
        let (pa, pb) = (pid, pid + 1);
        pid += 2;
        let a_run = [gcc, alice[0], alice[1], alice[2]];
        let b_run = [gcc, bob[0], bob[1], bob[2]];
        for i in 0..4 {
            if round % 2 == 0 {
                push(&mut trace, a_run[i], 1, pa, &mut seq);
                push(&mut trace, b_run[i], 2, pb, &mut seq);
            } else {
                push(&mut trace, b_run[i], 2, pb, &mut seq);
                push(&mut trace, a_run[i], 1, pa, &mut seq);
            }
        }
    }
    trace.num_users = 3;
    trace.num_hosts = 3;
    trace.validate().expect("well-formed trace");

    // --- Semantic distance agrees with intuition (Table 1/2 machinery).
    let ex = farmer::core::Extractor;
    let (req_main, p_main) = ex.extract(&trace, &trace.events[1]);
    let (req_util, p_util) = ex.extract(&trace, &trace.events[5]);
    println!(
        "sim(main.c, util.c across users' runs) = {:.3}",
        similarity(
            &req_main,
            p_main,
            &req_util,
            p_util,
            AttrCombo::hp_default(),
            PathMode::Ipa
        )
    );

    // --- Mine with FARMER and with pure sequence weights (p = 0).
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
    let sequence_only = Farmer::mine_trace(
        &trace,
        FarmerConfig::default().with_p(0.0).with_max_strength(0.0),
    );

    println!("\nFARMER's correlators of alice's main.c (threshold 0.4):");
    for c in farmer.correlators(alice[0]).entries() {
        println!("  -> {} degree {:.3}", path_of(&trace, c.file), c.degree);
    }
    println!("\npure sequence mining's view (p = 0, unfiltered):");
    for c in sequence_only
        .correlators_with_threshold(alice[0], 0.0)
        .top(4)
    {
        println!("  -> {} degree {:.3}", path_of(&trace, c.file), c.degree);
    }
    println!(
        "\nnote: with interleaved compiles, sequence mining ranks bob's files as\n\
         successors of alice's; FARMER's semantic filter keeps alice's project\n\
         (and the shared compiler) on top — the paper's §2 argument."
    );
}

fn path_of(trace: &Trace, f: FileId) -> String {
    trace.paths.render(trace.path_of(f).expect("paths present"))
}

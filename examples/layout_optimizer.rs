//! FARMER-enabled file-data layout (§4.2): group strongly correlated
//! read-only files so batched reads become sequential I/O.
//!
//! ```text
//! cargo run --release --example layout_optimizer
//! ```

use farmer::mds::layout::{plan_layout, replay_reads, LayoutConfig};
use farmer::mds::osd::OsdConfig;
use farmer::prelude::*;

fn main() {
    let trace = WorkloadSpec::hp().scaled(0.5).generate();
    println!(
        "planning data layout for {} ({} files)\n",
        trace.label,
        trace.num_files()
    );

    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());

    for min_degree in [0.2, 0.4, 0.6] {
        let layout = plan_layout(
            &farmer,
            &trace,
            LayoutConfig {
                min_degree,
                max_group: 8,
            },
        );
        let scattered = replay_reads(&trace, None, OsdConfig::default());
        let grouped = replay_reads(&trace, Some(&layout), OsdConfig::default());
        println!(
            "min_degree {min_degree:.1}: {} groups covering {} files; \
             seeks {} -> {} ({:.0}% saved), I/O busy {:.1}s -> {:.1}s",
            layout.num_groups,
            layout.grouped_files,
            scattered.seeks,
            grouped.seeks,
            100.0 * (1.0 - grouped.seeks as f64 / scattered.seeks as f64),
            scattered.busy_us as f64 / 1e6,
            grouped.busy_us as f64 / 1e6,
        );
    }
    println!(
        "\nonly read-only files are grouped (the paper's \"initial attempt\" rule),\n\
         so write-heavy files never complicate group maintenance."
    );
}

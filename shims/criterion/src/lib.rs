//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides a minimal timing harness behind criterion's API: `black_box`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `throughput`/`sample_size`/`finish`), [`Throughput`], and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is measured
//! with a short calibrated loop and reported as `ns/iter` (plus element
//! throughput when declared) — enough to compare kernels locally, with no
//! statistical machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, first calibrating an iteration count that fills the
    /// measurement window (~100 ms, capped at `sample_size` rounds).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: grow the batch until it runs >= 10 ms.
        let mut batch: u64 = 1;
        let batch_ns = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as u64;
            if ns >= 10_000_000 || batch >= 1 << 20 {
                break ns.max(1) / batch;
            }
            batch = (batch * 4).min(1 << 20);
        };
        // Measurement: as many batches as fit in ~100 ms, at least one.
        let rounds = (100_000_000 / (batch_ns * batch).max(1)).clamp(1, self.iters);
        let t = Instant::now();
        for _ in 0..rounds * batch {
            black_box(routine());
        }
        let total = t.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / (rounds * batch) as f64;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let per_iter = Duration::from_nanos(self.ns_per_iter as u64);
        match throughput {
            Some(Throughput::Elements(n)) if self.ns_per_iter > 0.0 => {
                let rate = n as f64 * 1e9 / self.ns_per_iter;
                println!("bench: {name:<40} {per_iter:>12.2?}/iter  {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if self.ns_per_iter > 0.0 => {
                let rate = n as f64 * 1e9 / self.ns_per_iter;
                println!("bench: {name:<40} {per_iter:>12.2?}/iter  {rate:>14.0} B/s");
            }
            _ => println!("bench: {name:<40} {per_iter:>12.2?}/iter"),
        }
    }
}

/// Benchmark registry (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 100,
        };
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 100,
        }
    }
}

/// A named group sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Cap the number of measurement rounds.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name), self.throughput);
        self
    }

    /// Close the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10)).sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}

//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the exact API surface the workspace consumes — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], `gen`, `gen_bool`, `gen_range` over
//! integer and float ranges — backed by a xoshiro256++ generator seeded via
//! splitmix64 (the same construction the real `rand_chacha`-free small-rng
//! stacks use). Determinism contract matches the workspace's needs: equal
//! seeds give identical streams on every platform.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructor (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirror of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Map a uniform 64-bit word into `[0, span)` (Lemire-style multiply-shift;
/// the residual bias over a 64-bit word is far below anything the synthetic
/// workloads could observe).
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

/// High-level sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    /// Uniform draw from an integer or float range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniformity_over_buckets() {
        let mut r = StdRng::seed_from_u64(6);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn generic_unsized_rng_usable() {
        fn sample_dyn(rng: &mut (impl super::RngCore + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(8);
        let v = sample_dyn(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}

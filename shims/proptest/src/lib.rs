//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this local crate
//! re-implements the pieces the workspace's property tests consume: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range/tuple
//! strategies, [`collection::vec`], [`collection::btree_map`],
//! [`collection::btree_set`], [`option::of`], [`any`], and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each generated test runs `cases` random samples seeded
//! deterministically from the test name and case index (no shrinking —
//! failures report the panic from the failing case directly). That keeps
//! the tests reproducible across runs and platforms, which is what the
//! workspace relies on.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::Rng as _;
pub use rand::SeedableRng;

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (mirror of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// Full-domain strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Size bound for collection strategies (mirror of `SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use std::collections::{BTreeMap, BTreeSet};

    use super::{SizeRange, StdRng, Strategy};

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeMap` with keys from `key`, values from `value`; duplicate keys
    /// collapse, so the final size may undershoot the drawn count (the real
    /// crate behaves the same way).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }

    /// `BTreeSet` of values from `element`; duplicates collapse.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (mirror of `proptest::option`).
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng as _;

    /// `Option<T>`: `None` one quarter of the time (the real crate's default
    /// weighting is also biased toward `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ case.wrapping_mul(0x9e3779b97f4a7c15)
}

/// Property assertion: panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Property equality assertion: panics with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// The property-test macro: each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case as u64),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..=1.0, z in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn vec_of_tuples_sized(v in crate::collection::vec((0u8..4, 0u32..40), 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 40);
            }
        }

        #[test]
        fn btree_collections_bounded(
            m in crate::collection::btree_map(0u32..100, 0u64..50, 0..20),
            s in crate::collection::btree_set(0u64..100, 0..20),
            o in crate::option::of(any::<u32>()),
        ) {
            prop_assert!(m.len() < 20);
            prop_assert!(s.len() < 20);
            let _ = o;
        }
    }

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        assert_eq!(super::seed_for("a", 0), super::seed_for("a", 0));
        assert_ne!(super::seed_for("a", 0), super::seed_for("b", 0));
        assert_ne!(super::seed_for("a", 0), super::seed_for("a", 1));
    }
}

//! # farmer — File Access coRrelation Mining and Evaluation Reference model
//!
//! A from-scratch Rust reproduction of **"FARMER: A Novel Approach to File
//! Access Correlation Mining And Evaluation Reference Model for Optimizing
//! Peta-Scale File System Performance"** (Xia, Feng, Jiang, Tian, Wang —
//! UNL CSE TR-UNL-CSE-2008-0001 / HPDC 2008).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`trace`] — trace model, synthetic workload generators (LLNL / INS /
//!   RES / HP presets), parser, successor statistics,
//! * [`core`] — the FARMER model: semantic vectors (VSM), correlation
//!   graph, CoMiner, correlator lists, and the unified query layer
//!   (`CorrelationSource`) every consumer serves from,
//! * [`prefetch`] — the FARMER-enabled prefetching algorithm (FPA), the
//!   Nexus comparator, classical baselines, and a cache simulator,
//! * [`store`] — an embedded B+-tree key-value store (Berkeley DB's role),
//! * [`mds`] — a discrete-event metadata-server / OSD simulator with the
//!   paper's dual priority queues, multi-MDS load balancing (§4.1) and the
//!   §4.2 grouped data layout,
//! * [`apps`] — the §4.3 applications (correlation-aware security rules
//!   and replica groups) and the §7 attribute regression,
//! * [`stream`] — the sharded online mining service: unbounded event
//!   streams mined under a hard memory budget, with consistent snapshots
//!   that refresh the prefetcher mid-flight,
//! * [`serve`] — the concurrent serving tier: lock-free multi-producer
//!   ingest into the always-running miner, epoch-swapped snapshot
//!   publication, and wait-free per-thread query readers,
//! * [`obs`] — zero-dependency observability: relaxed-atomic counters and
//!   gauges, log2-bucketed latency histograms, RAII spans and a
//!   hierarchical registry; every pipeline layer streams its metrics here
//!   when instrumented, and compiles to no-op handles when not.
//!
//! ## Quick start
//!
//! ```
//! use farmer::prelude::*;
//!
//! // Generate a synthetic HP-style trace and mine it.
//! let trace = WorkloadSpec::hp().scaled(0.02).generate();
//! let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
//!
//! // Query the strongest correlations of the first file accessed.
//! let file = trace.events[0].file;
//! let list = farmer.correlators(file);
//! for c in list.top(3) {
//!     println!("{file} -> {} (degree {:.2})", c.file, c.degree);
//! }
//! ```

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub use farmer_apps as apps;
pub use farmer_core as core;
pub use farmer_mds as mds;
pub use farmer_obs as obs;
pub use farmer_prefetch as prefetch;
pub use farmer_serve as serve;
pub use farmer_store as store;
pub use farmer_stream as stream;
pub use farmer_trace as trace;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use farmer_core::{
        AttrCombo, AttrKind, CorrelationSource, Correlator, CorrelatorList, CorrelatorTable,
        Farmer, FarmerConfig, PathMode, Request,
    };
    pub use farmer_mds::{replay, LatencyModel, MdsServer, ReplayConfig, ReplayReport};
    pub use farmer_obs::Registry;
    pub use farmer_prefetch::{
        simulate, FpaPredictor, MetadataCache, NexusPredictor, Predictor, SimConfig, SimReport,
    };
    pub use farmer_serve::{FarmerServe, ServeConfig};
    pub use farmer_store::{MetaStore, MetadataRecord};
    pub use farmer_stream::{
        CellReader, ShardedMiner, SnapshotCell, StreamConfig, StreamMiner, StreamSnapshot,
    };
    pub use farmer_trace::{
        FileId, FilePath, Op, ReplayStream, Trace, TraceEvent, TraceFamily, WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn doc_example_compiles_and_runs() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
        let file = trace.events[0].file;
        let _ = farmer.correlators(file);
    }
}
